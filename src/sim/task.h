// Coroutine types for simulated processes.
//
// Two shapes cover everything the applications need:
//
//  * Task<T>  — a lazily-started awaitable coroutine. Used for nested
//    calls inside a simulated thread of control ("call this simulated
//    subroutine and wait for its result"). Completion resumes the
//    awaiter by symmetric transfer, so arbitrarily deep chains do not
//    grow the host stack.
//
//  * Process  — a detached root coroutine representing one simulated
//    thread (a server worker, a client, an event loop). It is scheduled
//    to start via Scheduler::Spawn-like helpers and self-destroys when
//    it finishes.
//
// Exceptions escaping a simulated process indicate a bug in the
// simulation itself, so both types terminate on unhandled exceptions.
#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <coroutine>
#include <cstdlib>
#include <optional>
#include <utility>

#include "src/sim/scheduler.h"
#include "src/util/arena.h"

namespace whodunit::sim {

template <typename T = void>
class [[nodiscard]] Task;

namespace internal {

// Routes coroutine-frame allocation through the per-thread arena pool:
// a simulated thread of control is created and destroyed on the same
// host thread (its shard's), so frames recycle through the freelists
// instead of hitting malloc once per simulated client/request.
struct PooledFrame {
  static void* operator new(size_t n) {
    return util::ArenaPool::ThisThread().Allocate(n);
  }
  static void operator delete(void* p, size_t n) noexcept {
    util::ArenaPool::ThisThread().Deallocate(p, n);
  }
};

template <typename Promise>
struct TaskFinalAwaiter {
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) const noexcept {
    auto continuation = h.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct TaskPromiseBase : PooledFrame {
  std::coroutine_handle<> continuation;

  std::suspend_always initial_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { std::abort(); }
};

}  // namespace internal

// Lazily-started awaitable coroutine returning T.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal::TaskPromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    internal::TaskFinalAwaiter<promise_type> final_suspend() noexcept { return {}; }
    void return_value(T v) { value = std::move(v); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Task() { Destroy(); }

  // Awaiting a Task starts it and suspends the awaiter until it
  // completes; the Task's result becomes the await expression's value.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) noexcept {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  T await_resume() { return std::move(*handle_.promise().value); }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal::TaskPromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    internal::TaskFinalAwaiter<promise_type> final_suspend() noexcept { return {}; }
    void return_void() {}
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Task() { Destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) noexcept {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() const noexcept {}

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

// A detached root coroutine: one simulated thread of control.
//
// The frame self-destroys at completion (final_suspend never suspends),
// so a Process must not be awaited; synchronization happens through
// channels, locks, or plain counters in the enclosing harness.
class Process {
 public:
  struct promise_type : internal::PooledFrame {
    Process get_return_object() {
      return Process(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() noexcept { std::abort(); }
  };

  // Schedules the process to begin at the scheduler's current time.
  void Start(Scheduler& sched) && {
    auto h = std::exchange(handle_, nullptr);
    sched.ResumeAfter(0, h);
  }

  // Schedules the process to begin dt ns from now.
  void StartAfter(Scheduler& sched, SimTime dt) && {
    auto h = std::exchange(handle_, nullptr);
    sched.ResumeAfter(dt, h);
  }

 private:
  explicit Process(std::coroutine_handle<promise_type> h) : handle_(h) {}

  std::coroutine_handle<promise_type> handle_;
};

// Spawns a process coroutine: Spawn(sched, SomeCoroutine(args...)).
inline void Spawn(Scheduler& sched, Process p) { std::move(p).Start(sched); }
inline void SpawnAfter(Scheduler& sched, SimTime dt, Process p) {
  std::move(p).StartAfter(sched, dt);
}

}  // namespace whodunit::sim

#endif  // SRC_SIM_TASK_H_
