// Message channels between simulated stages.
//
// A Channel models any of the paper's explicit producer/consumer
// conduits: a socket between machines (latency > 0), a pipe, or an
// in-process queue (latency == 0). Delivery is FIFO; receivers block
// (suspend) until a message or channel close arrives.
#ifndef SRC_SIM_CHANNEL_H_
#define SRC_SIM_CHANNEL_H_

#include <coroutine>
#include <cstdint>
#include <optional>
#include <utility>

#include "src/sim/scheduler.h"
#include "src/sim/time.h"
#include "src/util/ring_queue.h"

namespace whodunit::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Scheduler& sched, SimTime latency = 0) : sched_(sched), latency_(latency) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Enqueues a message; it becomes receivable `latency` ns from now.
  // Safe to call from plain code or from a coroutine.
  void Send(T msg) {
    ++messages_sent_;
    sched_.ScheduleAfter(latency_, [this, m = std::move(msg)]() mutable { Deliver(std::move(m)); });
  }

  // Awaitable: co_await ch.Receive() yields std::optional<T>;
  // std::nullopt means the channel was closed and drained.
  struct ReceiveAwaiter {
    Channel& ch;
    std::optional<T> result;

    bool await_ready() {
      if (!ch.buffer_.empty()) {
        result = std::move(ch.buffer_.front());
        ch.buffer_.pop_front();
        return true;
      }
      if (ch.closed_) {
        return true;  // result stays nullopt
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ch.receivers_.push_back(PendingReceiver{this, h});
    }
    std::optional<T> await_resume() { return std::move(result); }
  };
  ReceiveAwaiter Receive() { return ReceiveAwaiter{*this, std::nullopt}; }

  // Closes the channel: blocked and future receivers get std::nullopt
  // once buffered messages are drained. The close travels in-band — it
  // is delivered through the scheduler after the channel latency, so it
  // never overtakes messages already sent.
  void Close() {
    sched_.ScheduleAfter(latency_, [this] {
      closed_ = true;
      // Wake all blocked receivers with nullopt; buffered messages were
      // already matched to receivers in Deliver, so the buffer is empty
      // whenever receivers_ is non-empty.
      while (!receivers_.empty()) {
        PendingReceiver r = receivers_.front();
        receivers_.pop_front();
        sched_.ResumeAfter(0, r.handle);
      }
    });
  }

  bool closed() const { return closed_; }
  size_t pending() const { return buffer_.size(); }
  size_t blocked_receivers() const { return receivers_.size(); }
  uint64_t messages_sent() const { return messages_sent_; }

 private:
  struct PendingReceiver {
    ReceiveAwaiter* awaiter;
    std::coroutine_handle<> handle;
  };

  void Deliver(T msg) {
    if (!receivers_.empty()) {
      PendingReceiver r = receivers_.front();
      receivers_.pop_front();
      r.awaiter->result = std::move(msg);
      r.handle.resume();
      return;
    }
    buffer_.push_back(std::move(msg));
  }

  Scheduler& sched_;
  SimTime latency_;
  bool closed_ = false;
  // Ring buffers, not deques: once sized to the high-water mark they
  // never touch the allocator again, keeping a busy channel off the
  // heap (libstdc++'s deque churns 512-byte chunks per wrap).
  util::RingQueue<T> buffer_;
  util::RingQueue<PendingReceiver> receivers_;
  uint64_t messages_sent_ = 0;
};

}  // namespace whodunit::sim

#endif  // SRC_SIM_CHANNEL_H_
