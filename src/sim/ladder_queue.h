// Event-queue implementations for the discrete-event scheduler.
//
// LadderQueue is a two-tier calendar structure (Tang & Goh's ladder
// queue, simplified): a sorted near-future "bottom" that Pop consumes
// directly, a stack of rungs — each a dense wheel of FIFO buckets, a
// finer rung subdividing one over-full bucket of the rung above — and
// an unsorted far-future "top" that absorbs arbitrarily distant events
// in O(1). Amortized O(1) push/pop versus the O(log n) binary heap,
// and pops touch a small sorted vector instead of sifting a heap that
// spans the whole calendar.
//
// Correctness does not depend on any of that structure: every event
// carries a (time, seq) key that is a TOTAL order, so the only
// contract a queue must meet is "Pop returns the minimum-key event".
// LadderQueue and HeapQueue therefore produce byte-identical
// simulations, which the randomized differential test in
// tests/sim_scheduler_test.cc exercises and which keeps the shard
// merge determinism contract intact.
//
// Tier responsibility regions are contiguous and exhaustive:
//   [0, bottom_limit_)            -> bottom (sorted insert)
//   [bottom_limit_, rung ends...) -> finest rung whose range covers t
//   [last rung end, +inf)         -> top (unsorted append)
#ifndef SRC_SIM_LADDER_QUEUE_H_
#define SRC_SIM_LADDER_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "src/sim/event.h"
#include "src/sim/time.h"

namespace whodunit::sim {

// Deterministic structural counters, exported by the scheduler as
// sim.* metrics (docs/METRICS.md). Event times alone decide every
// transition, so the counts are identical across thread counts.
struct QueueStats {
  uint64_t peak_depth = 0;   // max events resident at once
  uint64_t spills = 0;       // events deferred to the unsorted top tier
  uint64_t promotions = 0;   // rungs spawned (bucket subdivisions + top seeds)
  uint64_t refills = 0;      // bottom refills (bucket sorts)
};

class LadderQueue {
 public:
  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  const QueueStats& stats() const { return stats_; }

  void Push(ScheduledEvent ev);

  // Earliest event, or nullptr when empty. May reorganize tiers to
  // materialize the head; the pointer is invalidated by Push/Pop.
  const ScheduledEvent* Peek();

  // Requires !empty().
  ScheduledEvent Pop();

 private:
  struct Rung {
    SimTime origin = 0;  // start of covered range
    SimTime limit = 0;   // exclusive end of covered range (routing key)
    SimTime width = 1;   // bucket width (>= 1)
    size_t cur = 0;      // first bucket not yet drained
    std::vector<std::vector<ScheduledEvent>> buckets;
  };

  static constexpr SimTime kVirginLimit =
      std::numeric_limits<SimTime>::max();
  static constexpr size_t kRungBuckets = 512;   // wheel size per rung
  static constexpr size_t kSortThreshold = 64;  // bucket -> bottom cutoff
  static constexpr size_t kBottomMax = 1024;    // sorted-insert cost cap
  static constexpr size_t kBottomKeep = 64;     // retained on bottom spill
  static constexpr size_t kMaxRungs = 16;

  size_t ActiveBottom() const { return bottom_.size() - bottom_pos_; }
  // Ensures bottom_[bottom_pos_] is the global minimum (or the queue
  // is empty), refilling/subdividing as needed.
  void EnsureBottom();
  // Moves events into a fresh finest rung covering [origin, limit).
  void SpawnRung(SimTime origin, SimTime limit,
                 std::vector<ScheduledEvent> events);
  void PushToRungOrTop(ScheduledEvent&& ev);
  // Sheds the tail of an over-full bottom into a finer structure so
  // sorted inserts stay O(kBottomMax).
  void SpillBottomTail();

  std::vector<ScheduledEvent> bottom_;
  size_t bottom_pos_ = 0;
  // Exclusive upper bound of the region bottom is responsible for.
  SimTime bottom_limit_ = kVirginLimit;

  std::vector<Rung> rungs_;  // front = coarsest, back = finest

  std::vector<ScheduledEvent> top_;
  SimTime top_min_ = 0;
  SimTime top_max_ = 0;

  size_t size_ = 0;
  QueueStats stats_;
};

// The pre-ladder implementation: a binary heap over the same event
// records. Kept as the differential-test oracle and as the baseline
// leg of BM_SchedulerThroughput in bench_scaling_clients.
class HeapQueue {
 public:
  bool empty() const { return queue_.empty(); }
  size_t size() const { return queue_.size(); }
  const QueueStats& stats() const { return stats_; }

  void Push(ScheduledEvent ev) {
    queue_.push(std::move(ev));
    if (queue_.size() > stats_.peak_depth) {
      stats_.peak_depth = queue_.size();
    }
  }

  const ScheduledEvent* Peek() {
    return queue_.empty() ? nullptr : &queue_.top();
  }

  ScheduledEvent Pop() {
    // Move out before popping: the payload is move-only and pop()
    // would destroy it in place.
    ScheduledEvent ev = std::move(const_cast<ScheduledEvent&>(queue_.top()));
    queue_.pop();
    return ev;
  }

 private:
  struct Later {
    bool operator()(const ScheduledEvent& a, const ScheduledEvent& b) const {
      return EventBefore(b, a);
    }
  };

  std::priority_queue<ScheduledEvent, std::vector<ScheduledEvent>, Later>
      queue_;
  QueueStats stats_;
};

}  // namespace whodunit::sim

#endif  // SRC_SIM_LADDER_QUEUE_H_
