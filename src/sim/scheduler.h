// Discrete-event scheduler: the heart of the virtual-time simulator.
#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace whodunit::sim {

// A calendar of (virtual time, callback) events executed in time order.
//
// Ties are broken by insertion order (FIFO), which keeps simulations
// deterministic when many events share a timestamp. The scheduler is
// deliberately minimal: coroutine awaitables (Delay, locks, channels,
// CPU) build on ScheduleAt/ScheduleAfter.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  // Enqueues cb to run at absolute virtual time t (>= now).
  void ScheduleAt(SimTime t, Callback cb);

  // Enqueues cb to run dt nanoseconds from now (dt < 0 is clamped to 0).
  void ScheduleAfter(SimTime dt, Callback cb);

  // Convenience: resume a coroutine at/after a time.
  void ResumeAt(SimTime t, std::coroutine_handle<> h);
  void ResumeAfter(SimTime dt, std::coroutine_handle<> h);

  // Runs events until the calendar is empty.
  void Run();

  // Runs events with time <= t, then sets now to t. Events scheduled
  // beyond t stay queued.
  void RunUntil(SimTime t);

  // Executes the single earliest event; returns false if none.
  bool Step();

  bool empty() const { return queue_.empty(); }
  uint64_t events_executed() const { return events_executed_; }

 private:
  struct Item {
    SimTime time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
};

// Awaitable that suspends the current coroutine for dt virtual ns.
// Usage: co_await Delay{sched, Micros(5)};
struct Delay {
  Scheduler& sched;
  SimTime dt;

  bool await_ready() const noexcept { return dt <= 0; }
  void await_suspend(std::coroutine_handle<> h) const { sched.ResumeAfter(dt, h); }
  void await_resume() const noexcept {}
};

}  // namespace whodunit::sim

#endif  // SRC_SIM_SCHEDULER_H_
