// Discrete-event scheduler: the heart of the virtual-time simulator.
#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <coroutine>
#include <cstdint>
#include <utility>

#include "src/obs/metrics.h"
#include "src/sim/event.h"
#include "src/sim/ladder_queue.h"
#include "src/sim/time.h"

namespace whodunit::sim {

// A calendar of (virtual time, callback) events executed in time order.
//
// Ties are broken by insertion order (FIFO), which keeps simulations
// deterministic when many events share a timestamp. The scheduler is
// deliberately minimal: coroutine awaitables (Delay, locks, channels,
// CPU) build on ScheduleAt/ScheduleAfter.
//
// The calendar itself is pluggable: BasicScheduler is parameterized on
// the queue type so the ladder queue (production) and the pre-existing
// binary heap (differential-test oracle, bench baseline) run the exact
// same scheduling logic. Because the (time, seq) key is a total order,
// both produce identical executions — see src/sim/ladder_queue.h.
//
// Callbacks are stored as sim::Event records: coroutine resumes carry
// no allocation at all, small lambdas live inline, and oversized ones
// come from the per-thread arena pool instead of malloc.
template <typename Queue>
class BasicScheduler {
 public:
  BasicScheduler() = default;
  BasicScheduler(const BasicScheduler&) = delete;
  BasicScheduler& operator=(const BasicScheduler&) = delete;
  ~BasicScheduler() { PublishMetrics(); }

  SimTime now() const { return now_; }

  // Enqueues cb to run at absolute virtual time t (>= now).
  template <typename F>
  void ScheduleAt(SimTime t, F&& cb) {
    PushEvent(t, Event::Of(std::forward<F>(cb)));
  }

  // Enqueues cb to run dt nanoseconds from now (dt < 0 is clamped to 0).
  template <typename F>
  void ScheduleAfter(SimTime dt, F&& cb) {
    ScheduleAt(now_ + (dt < 0 ? 0 : dt), std::forward<F>(cb));
  }

  // Convenience: resume a coroutine at/after a time. These take the
  // allocation-free fast path through Event::Resume.
  void ResumeAt(SimTime t, std::coroutine_handle<> h) {
    PushEvent(t, Event::Resume(h));
  }
  void ResumeAfter(SimTime dt, std::coroutine_handle<> h) {
    ResumeAt(now_ + (dt < 0 ? 0 : dt), h);
  }

  // Runs events until the calendar is empty.
  void Run() {
    while (Step()) {
    }
  }

  // Runs events with time <= t, then sets now to t. Events scheduled
  // beyond t stay queued.
  void RunUntil(SimTime t) {
    while (const ScheduledEvent* head = queue_.Peek()) {
      if (head->time > t) {
        break;
      }
      Step();
    }
    if (now_ < t) {
      now_ = t;
    }
  }

  // Executes the single earliest event; returns false if none.
  bool Step() {
    if (queue_.empty()) {
      return false;
    }
    ScheduledEvent item = queue_.Pop();
    now_ = item.time;
    ++events_executed_;
    item.ev.Fire();
    return true;
  }

  bool empty() const { return queue_.empty(); }
  size_t queue_depth() const { return queue_.size(); }
  uint64_t events_executed() const { return events_executed_; }
  uint64_t events_scheduled() const { return events_scheduled_; }
  const QueueStats& queue_stats() const { return queue_.stats(); }

  // Folds the scheduler's deterministic counters into the calling
  // thread's metrics registry (docs/METRICS.md, sim.* family). Runs
  // automatically on destruction — app schedulers are shard-locals, so
  // the counts land in the shard registry and merge in shard order —
  // but benches may call it earlier to snapshot mid-run. Publishes
  // deltas since the previous call, so calling twice never
  // double-counts.
  void PublishMetrics() {
    obs::MetricsRegistry& reg = obs::Registry();
    const QueueStats& qs = queue_.stats();
    reg.GetCounter("sim.events_scheduled")
        .Add(events_scheduled_ - published_.scheduled);
    reg.GetCounter("sim.events_executed")
        .Add(events_executed_ - published_.executed);
    reg.GetCounter("sim.ladder_promotions")
        .Add(qs.promotions - published_.promotions);
    reg.GetCounter("sim.ladder_spills").Add(qs.spills - published_.spills);
    published_ = {events_scheduled_, events_executed_, qs.promotions,
                  qs.spills};
    // Peak depth is a high-water mark, not a flow: fold as a gauge
    // (gauges add across shards, giving the sum of per-shard peaks).
    obs::Gauge& peak = reg.GetGauge("sim.queue_peak_depth");
    int64_t depth = static_cast<int64_t>(qs.peak_depth);
    if (depth > last_peak_gauge_) {
      peak.Add(depth - last_peak_gauge_);
      last_peak_gauge_ = depth;
    }
  }

 private:
  struct Published {
    uint64_t scheduled = 0;
    uint64_t executed = 0;
    uint64_t promotions = 0;
    uint64_t spills = 0;
  };

  void PushEvent(SimTime t, Event ev) {
    if (t < now_) {
      t = now_;
    }
    queue_.Push(ScheduledEvent{t, next_seq_++, std::move(ev)});
    ++events_scheduled_;
  }

  Queue queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  uint64_t events_scheduled_ = 0;
  Published published_;
  int64_t last_peak_gauge_ = 0;
};

using Scheduler = BasicScheduler<LadderQueue>;
// The pre-ladder scheduler, kept for differential tests and the
// BM_SchedulerThroughput baseline leg.
using HeapScheduler = BasicScheduler<HeapQueue>;

// Awaitable that suspends the current coroutine for dt virtual ns.
// Usage: co_await Delay{sched, Micros(5)};
struct Delay {
  Scheduler& sched;
  SimTime dt;

  bool await_ready() const noexcept { return dt <= 0; }
  void await_suspend(std::coroutine_handle<> h) const { sched.ResumeAfter(dt, h); }
  void await_resume() const noexcept {}
};

}  // namespace whodunit::sim

#endif  // SRC_SIM_SCHEDULER_H_
