#include "src/sim/lock.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "src/util/shard_state.h"

namespace whodunit::sim {
namespace {

// Thread-local so concurrent shard simulations allocate disjoint id
// streams; registered with the shard-state registry so every shard
// isolate restarts the stream from 0 (deterministic ids regardless of
// which pool thread runs the shard).
uint64_t& LockIdCounter() {
  thread_local uint64_t next = 0;
  return next;
}

uint64_t NextLockId() { return LockIdCounter()++; }

const util::ShardCounterRegistrar lock_id_registrar{util::ShardCounter{
    []() { return LockIdCounter(); },
    [](uint64_t v) { LockIdCounter() = v; },
    0,
}};

}  // namespace

LockGuard::LockGuard(LockGuard&& other) noexcept
    : lock_(std::exchange(other.lock_, nullptr)), tag_(other.tag_) {}

LockGuard& LockGuard::operator=(LockGuard&& other) noexcept {
  if (this != &other) {
    Release();
    lock_ = std::exchange(other.lock_, nullptr);
    tag_ = other.tag_;
  }
  return *this;
}

void LockGuard::Release() {
  if (lock_ != nullptr) {
    lock_->Release(tag_);
    lock_ = nullptr;
  }
}

SimMutex::SimMutex(Scheduler& sched, std::string name)
    : sched_(sched), name_(std::move(name)), id_(NextLockId()) {}

bool SimMutex::CanGrantNow(LockMode mode) const {
  if (!waiters_.empty()) {
    return false;  // FIFO: nobody jumps the queue.
  }
  if (holders_.empty()) {
    return true;
  }
  return mode == LockMode::kShared && holder_mode_ == LockMode::kShared;
}

void SimMutex::GrantTo(uint64_t tag, LockMode mode) {
  holders_.push_back(tag);
  holder_mode_ = mode;
  ++acquire_count_;
}

uint64_t SimMutex::CurrentBlockingTag() const {
  if (holders_.empty()) {
    return LockObserver::kNoTag;
  }
  return holders_.front();
}

bool SimMutex::AcquireAwaiter::await_ready() {
  if (!lock.CanGrantNow(mode)) {
    return false;
  }
  lock.GrantTo(tag, mode);
  if (lock.observer_ != nullptr) {
    lock.observer_->OnAcquired(lock, tag, LockObserver::kNoTag, 0);
  }
  return true;
}

void SimMutex::AcquireAwaiter::await_suspend(std::coroutine_handle<> h) {
  enqueued_at = lock.sched_.now();
  blocking_tag = lock.CurrentBlockingTag();
  ++lock.contended_count_;
  lock.waiters_.push_back(Waiter{tag, mode, h, enqueued_at, blocking_tag});
}

void SimMutex::Release(uint64_t tag) {
  auto it = std::find(holders_.begin(), holders_.end(), tag);
  if (it != holders_.end()) {
    holders_.erase(it);
  }
  if (observer_ != nullptr) {
    observer_->OnReleased(*this, tag);
  }
  PumpQueue();
}

void SimMutex::PumpQueue() {
  if (!holders_.empty() || waiters_.empty()) {
    // Shared holders remain: an exclusive waiter must keep waiting, and
    // FIFO bars later shared waiters from overtaking it.
    return;
  }
  // Grant the front waiter; if it is shared, grant the whole adjacent
  // shared batch.
  const LockMode front_mode = waiters_.front().mode;
  std::vector<Waiter> granted;
  if (front_mode == LockMode::kExclusive) {
    granted.push_back(waiters_.front());
    waiters_.pop_front();
  } else {
    while (!waiters_.empty() && waiters_.front().mode == LockMode::kShared) {
      granted.push_back(waiters_.front());
      waiters_.pop_front();
    }
  }
  for (const Waiter& w : granted) {
    GrantTo(w.tag, w.mode);
    const SimTime wait = sched_.now() - w.enqueued_at;
    total_wait_ += wait;
    if (observer_ != nullptr) {
      observer_->OnAcquired(*this, w.tag, w.blocking_tag, wait);
    }
    sched_.ResumeAfter(0, w.handle);
  }
}

}  // namespace whodunit::sim
