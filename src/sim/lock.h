// Simulated locks with FIFO queueing, shared/exclusive modes, wait
// accounting, and observer hooks.
//
// These are the locks the reproduced applications contend on (the
// MiniDB table/row locks, the web-server queue mutex). The observer
// hook is how transaction crosstalk (paper §6) is measured: every
// acquire reports how long the requester waited and which holder was
// blocking it when the wait began.
#ifndef SRC_SIM_LOCK_H_
#define SRC_SIM_LOCK_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/sim/scheduler.h"
#include "src/sim/time.h"

namespace whodunit::sim {

enum class LockMode { kShared, kExclusive };

class SimMutex;

// Receives lock events. Tags are opaque 64-bit values chosen by the
// caller; the crosstalk recorder passes transaction-type ids.
class LockObserver {
 public:
  virtual ~LockObserver() = default;

  // Fired when a requester obtains the lock. wait == 0 means it was
  // granted immediately; otherwise blocking_tag identifies the holder
  // that was in the way when the wait began (kNoTag if unknown).
  virtual void OnAcquired(const SimMutex& lock, uint64_t waiter_tag, uint64_t blocking_tag,
                          SimTime wait) = 0;

  // Fired on release.
  virtual void OnReleased(const SimMutex& lock, uint64_t holder_tag) = 0;

  static constexpr uint64_t kNoTag = ~0ull;
};

// Movable RAII guard: releases on destruction unless released manually.
class LockGuard {
 public:
  LockGuard() = default;
  LockGuard(SimMutex* lock, uint64_t tag) : lock_(lock), tag_(tag) {}
  LockGuard(LockGuard&& other) noexcept;
  LockGuard& operator=(LockGuard&& other) noexcept;
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;
  ~LockGuard() { Release(); }

  void Release();
  bool held() const { return lock_ != nullptr; }

 private:
  SimMutex* lock_ = nullptr;
  uint64_t tag_ = 0;
};

// A virtual-time lock. Grant order is strict FIFO; a batch of adjacent
// shared requests at the queue head is granted together. FIFO ordering
// prevents writer starvation and keeps runs deterministic.
class SimMutex {
 public:
  explicit SimMutex(Scheduler& sched, std::string name = "lock");

  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  // Awaitable: co_await lock.Acquire(tag, mode);
  // The caller must pair it with Release(tag).
  struct AcquireAwaiter {
    SimMutex& lock;
    uint64_t tag;
    LockMode mode;
    SimTime enqueued_at = 0;
    uint64_t blocking_tag = LockObserver::kNoTag;

    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };
  AcquireAwaiter Acquire(uint64_t tag = 0, LockMode mode = LockMode::kExclusive) {
    return AcquireAwaiter{*this, tag, mode};
  }

  // Awaitable returning a LockGuard that releases automatically.
  struct ScopedAwaiter {
    AcquireAwaiter inner;
    bool await_ready() { return inner.await_ready(); }
    void await_suspend(std::coroutine_handle<> h) { inner.await_suspend(h); }
    LockGuard await_resume() noexcept { return LockGuard(&inner.lock, inner.tag); }
  };
  ScopedAwaiter AcquireScoped(uint64_t tag = 0, LockMode mode = LockMode::kExclusive) {
    return ScopedAwaiter{AcquireAwaiter{*this, tag, mode}};
  }

  // Releases one holding with the given tag. Grants queued waiters.
  void Release(uint64_t tag);

  void set_observer(LockObserver* observer) { observer_ = observer; }

  const std::string& name() const { return name_; }
  uint64_t id() const { return id_; }

  // Introspection / statistics.
  bool held() const { return !holders_.empty(); }
  bool held_exclusive() const { return !holders_.empty() && holder_mode_ == LockMode::kExclusive; }
  size_t queue_length() const { return waiters_.size(); }
  uint64_t acquire_count() const { return acquire_count_; }
  uint64_t contended_count() const { return contended_count_; }
  SimTime total_wait() const { return total_wait_; }

 private:
  friend struct AcquireAwaiter;

  struct Waiter {
    uint64_t tag;
    LockMode mode;
    std::coroutine_handle<> handle;
    SimTime enqueued_at;
    uint64_t blocking_tag;
  };

  // True if a request in `mode` can be granted right now, respecting
  // FIFO (nothing may jump a non-empty queue).
  bool CanGrantNow(LockMode mode) const;
  void GrantTo(uint64_t tag, LockMode mode);
  // Current tag blocking a new requester (front exclusive holder, or
  // an arbitrary shared holder for an exclusive requester).
  uint64_t CurrentBlockingTag() const;
  void PumpQueue();

  Scheduler& sched_;
  std::string name_;
  uint64_t id_;
  LockObserver* observer_ = nullptr;

  std::vector<uint64_t> holders_;  // tags of current holders
  LockMode holder_mode_ = LockMode::kExclusive;
  std::deque<Waiter> waiters_;

  uint64_t acquire_count_ = 0;
  uint64_t contended_count_ = 0;
  SimTime total_wait_ = 0;
};

}  // namespace whodunit::sim

#endif  // SRC_SIM_LOCK_H_
