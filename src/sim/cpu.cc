#include "src/sim/cpu.h"

#include <algorithm>
#include <utility>

namespace whodunit::sim {

CpuResource::CpuResource(Scheduler& sched, int cores, std::string name)
    : sched_(sched), name_(std::move(name)) {
  core_free_.assign(static_cast<size_t>(cores < 1 ? 1 : cores), 0);
  std::make_heap(core_free_.begin(), core_free_.end(), std::greater<>());
}

SimTime CpuResource::Reserve(SimTime cost) {
  std::pop_heap(core_free_.begin(), core_free_.end(), std::greater<>());
  SimTime start = std::max(sched_.now(), core_free_.back());
  SimTime finish = start + cost;
  core_free_.back() = finish;
  std::push_heap(core_free_.begin(), core_free_.end(), std::greater<>());
  busy_ += cost;
  ++requests_;
  if (hook_) {
    hook_(cost);
  }
  return finish;
}

bool CpuResource::ConsumeAwaiter::await_ready() {
  if (cost <= 0) {
    return true;
  }
  finish_at = cpu.Reserve(cost);
  return false;
}

void CpuResource::ConsumeAwaiter::await_suspend(std::coroutine_handle<> h) {
  cpu.sched_.ResumeAt(finish_at, h);
}

double CpuResource::Utilization(SimTime window) const {
  if (window <= 0) {
    return 0.0;
  }
  return static_cast<double>(busy_) /
         (static_cast<double>(window) * static_cast<double>(core_free_.size()));
}

}  // namespace whodunit::sim
