#include "src/sim/cpu.h"

#include <algorithm>
#include <utility>

namespace whodunit::sim {

CpuResource::CpuResource(Scheduler& sched, int cores, std::string name)
    : sched_(sched), name_(std::move(name)) {
  // An all-equal array is already a valid min-heap; no make_heap needed.
  core_free_.assign(static_cast<size_t>(cores < 1 ? 1 : cores), 0);
}

SimTime CpuResource::Reserve(SimTime cost) {
  // The soonest-free core sits at the heap root. Replace-top with a
  // single sift-down restores the heap in one pass where the old
  // pop_heap/push_heap pair paid two full sifts per reservation. Only
  // the minimum value is ever observed, so results are identical.
  SimTime start = std::max(sched_.now(), core_free_.front());
  SimTime finish = start + cost;
  size_t i = 0;
  const size_t n = core_free_.size();
  for (;;) {
    const size_t left = 2 * i + 1;
    if (left >= n) {
      break;
    }
    size_t child = left;
    const size_t right = left + 1;
    if (right < n && core_free_[right] < core_free_[left]) {
      child = right;
    }
    if (core_free_[child] >= finish) {
      break;
    }
    core_free_[i] = core_free_[child];
    i = child;
  }
  core_free_[i] = finish;
  busy_ += cost;
  ++requests_;
  if (hook_) {
    hook_(cost);
  }
  return finish;
}

bool CpuResource::ConsumeAwaiter::await_ready() {
  if (cost <= 0) {
    return true;
  }
  finish_at = cpu.Reserve(cost);
  return false;
}

void CpuResource::ConsumeAwaiter::await_suspend(std::coroutine_handle<> h) {
  cpu.sched_.ResumeAt(finish_at, h);
}

double CpuResource::Utilization(SimTime window) const {
  if (window <= 0) {
    return 0.0;
  }
  return static_cast<double>(busy_) /
         (static_cast<double>(window) * static_cast<double>(core_free_.size()));
}

}  // namespace whodunit::sim
