// Scheduled-event record: a small-buffer-optimized, move-only callable
// that replaces std::function<void()> in the scheduler's calendar.
//
// Three representations, discriminated by vt_:
//   * coroutine resume (vt_ == nullptr): just a coroutine_handle —
//     the overwhelmingly common case (Delay, locks, channels, CPU all
//     suspend/resume coroutines). Zero allocation, zero indirection
//     beyond the resume itself.
//   * inline callable: lambdas up to kInlineBytes construct directly
//     in the event's storage. Zero allocation.
//   * overflow callable: larger lambdas (e.g. a Channel::Send carrying
//     a fat message) live in a block from the per-thread ArenaPool, so
//     even the overflow path recycles memory instead of hitting malloc.
#ifndef SRC_SIM_EVENT_H_
#define SRC_SIM_EVENT_H_

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "src/sim/time.h"
#include "src/util/arena.h"

namespace whodunit::sim {

class Event {
 public:
  // Sized so ScheduledEvent (time + seq + Event) stays within 80 bytes;
  // covers every capture list in the simulator's hot paths.
  static constexpr size_t kInlineBytes = 48;
  static constexpr size_t kInlineAlign = 16;

  Event() noexcept { h_ = nullptr; }
  Event(Event&& other) noexcept { MoveFrom(other); }
  Event& operator=(Event&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;
  ~Event() { Reset(); }

  static Event Resume(std::coroutine_handle<> h) noexcept {
    Event e;
    e.h_ = h;
    return e;
  }

  template <typename F>
  static Event Of(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "overaligned event callables are not supported");
    Event e;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(e.inline_)) Fn(std::forward<F>(f));
      e.vt_ = &InlineOps<Fn>::vt;
    } else {
      void* mem = util::ArenaPool::ThisThread().Allocate(sizeof(Fn));
      e.heap_ = ::new (mem) Fn(std::forward<F>(f));
      e.vt_ = &HeapOps<Fn>::vt;
    }
    return e;
  }

  // Runs the payload and releases it; the event is empty afterwards.
  void Fire() {
    if (vt_ == nullptr) {
      std::coroutine_handle<> h = h_;
      h_ = nullptr;
      if (h) h.resume();
      return;
    }
    const VTable* vt = vt_;
    vt->invoke(*this);
    vt->destroy(*this);
    vt_ = nullptr;
    h_ = nullptr;
  }

  explicit operator bool() const noexcept {
    return vt_ != nullptr || h_ != nullptr;
  }
  // True when the payload lives in an arena-pooled overflow block.
  bool overflow() const noexcept { return vt_ != nullptr && vt_->heap; }

 private:
  struct VTable {
    void (*invoke)(Event&);
    void (*destroy)(Event&) noexcept;
    void (*relocate)(Event& dst, Event& src) noexcept;
    bool heap;
  };

  template <typename Fn>
  struct InlineOps {
    static Fn* Ptr(Event& e) noexcept {
      return std::launder(reinterpret_cast<Fn*>(e.inline_));
    }
    static void Invoke(Event& e) { (*Ptr(e))(); }
    static void Destroy(Event& e) noexcept { Ptr(e)->~Fn(); }
    static void Relocate(Event& dst, Event& src) noexcept {
      ::new (static_cast<void*>(dst.inline_)) Fn(std::move(*Ptr(src)));
      Ptr(src)->~Fn();
    }
    static constexpr VTable vt = {&Invoke, &Destroy, &Relocate,
                                  /*heap=*/false};
  };

  template <typename Fn>
  struct HeapOps {
    static void Invoke(Event& e) { (*static_cast<Fn*>(e.heap_))(); }
    static void Destroy(Event& e) noexcept {
      Fn* p = static_cast<Fn*>(e.heap_);
      p->~Fn();
      util::ArenaPool::ThisThread().Deallocate(p, sizeof(Fn));
    }
    static void Relocate(Event& dst, Event& src) noexcept {
      dst.heap_ = src.heap_;
    }
    static constexpr VTable vt = {&Invoke, &Destroy, &Relocate,
                                  /*heap=*/true};
  };

  void MoveFrom(Event& other) noexcept {
    vt_ = other.vt_;
    if (vt_ == nullptr) {
      h_ = other.h_;
    } else {
      vt_->relocate(*this, other);
    }
    other.vt_ = nullptr;
    other.h_ = nullptr;
  }

  void Reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(*this);
      vt_ = nullptr;
    }
    h_ = nullptr;
  }

  union {
    std::coroutine_handle<> h_;
    void* heap_;
    alignas(kInlineAlign) unsigned char inline_[kInlineBytes];
  };
  const VTable* vt_ = nullptr;
};

// A calendar entry. The (time, seq) pair is a total order — seq is a
// scheduler-global insertion counter — so ANY correct priority queue
// executes the same sequence, which is what keeps shard merges
// byte-identical no matter which queue implementation runs underneath.
struct ScheduledEvent {
  SimTime time;
  uint64_t seq;
  Event ev;
};

inline bool EventBefore(SimTime at, uint64_t aseq, SimTime bt,
                        uint64_t bseq) noexcept {
  return at != bt ? at < bt : aseq < bseq;
}

inline bool EventBefore(const ScheduledEvent& a,
                        const ScheduledEvent& b) noexcept {
  return EventBefore(a.time, a.seq, b.time, b.seq);
}

}  // namespace whodunit::sim

#endif  // SRC_SIM_EVENT_H_
