// TPC-W workload model: the fourteen interactions, the browsing-mix
// frequencies, and each interaction's database query plan.
//
// The plans are calibrated (see calibration.h and EXPERIMENTS.md) so
// that under the browsing mix the database CPU shares reproduce the
// paper's Table 1 regime: BestSellers and SearchResult dominate
// (~51.5% / ~43.3%), AdminConfirm is rare but extremely heavy (a large
// sort, a temporary table, and an UPDATE of one `item` row — the write
// that makes MyISAM table locking hurt).
#ifndef SRC_WORKLOAD_TPCW_H_
#define SRC_WORKLOAD_TPCW_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/db/database.h"
#include "src/util/rng.h"

namespace whodunit::workload {

enum class TpcwTransaction : uint8_t {
  kAdminConfirm = 0,
  kAdminRequest,
  kBestSellers,
  kBuyConfirm,
  kBuyRequest,
  kCustomerRegistration,
  kHome,
  kNewProducts,
  kOrderDisplay,
  kOrderInquiry,
  kProductDetail,
  kSearchRequest,
  kSearchResult,
  kShoppingCart,
};
inline constexpr int kTpcwTransactionCount = 14;

const char* TpcwName(TpcwTransaction t);

// Browsing-mix probability (percent) of each interaction, per the
// TPC-W specification.
double BrowsingMixPercent(TpcwTransaction t);

// Draws the next interaction under the browsing mix.
TpcwTransaction SampleBrowsingMix(util::Rng& rng);

// The interaction's database plan. `rng` picks the row an UPDATE
// touches (AdminConfirm updates one random item row).
db::Query TpcwQuery(TpcwTransaction t, util::Rng& rng);

// True for the interactions whose results TPC-W clause 6.3.3.1 allows
// the application to cache (the paper's caching optimization).
bool IsCacheable(TpcwTransaction t);

// Creates the TPC-W tables in `database`. `item_granularity` selects
// MyISAM-style table locks vs InnoDB-style row locks for `item` — the
// Figure 11 optimization knob.
void CreateTpcwTables(db::Database& database, db::LockGranularity item_granularity);

}  // namespace whodunit::workload

#endif  // SRC_WORKLOAD_TPCW_H_
