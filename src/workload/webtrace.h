// The synthetic stand-in for the Rice CS web trace (paper §8, §9.2).
//
// The paper replays a trace collected at Rice's departmental web
// server; we have no such trace, so this models its qualitative
// properties, which are all the experiments rely on:
//   * Zipf-skewed object popularity (caches work, but miss too);
//   * heavy-tailed object sizes (a few large objects dominate bytes);
//   * connection churn — clients open a connection, issue a few
//     requests, close, reconnect (what keeps Whodunit re-emulating
//     Apache's queue critical sections in §9.2).
#ifndef SRC_WORKLOAD_WEBTRACE_H_
#define SRC_WORKLOAD_WEBTRACE_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/http/http.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"
#include "src/workload/calibration.h"

namespace whodunit::workload {

struct WebTraceModel {
  uint64_t objects = kTraceObjects;
  double zipf_theta = kTraceZipfTheta;
  int requests_per_connection_mean = kRequestsPerConnectionMean;
  uint64_t min_object_bytes = kTraceMinObjectBytes;
  uint64_t max_object_bytes = kTraceMaxObjectBytes;
};

class WebTrace {
 public:
  explicit WebTrace(const WebTraceModel& model = {})
      : model_(model),
        zipf_(model.objects, model.zipf_theta),
        store_(model.objects, model.min_object_bytes, model.max_object_bytes) {}

  // The object ids requested over one connection: geometric length
  // with exactly the configured mean (the exponential's rate is
  // corrected for the floor: E[1 + floor(Exp(mu))] = 1 + 1/(e^(1/mu)-1),
  // solved for the target), objects Zipf-popular.
  std::vector<uint32_t> DrawConnection(util::Rng& rng) const {
    const double target = static_cast<double>(model_.requests_per_connection_mean);
    const double mu = 1.0 / std::log(1.0 + 1.0 / (target - 1.0));
    const int n = 1 + static_cast<int>(rng.NextExponential(mu));
    std::vector<uint32_t> objects;
    objects.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      objects.push_back(static_cast<uint32_t>(zipf_.Sample(rng)));
    }
    return objects;
  }

  uint64_t ObjectBytes(uint32_t object) const { return store_.SizeOf(object); }
  const http::ObjectStore& store() const { return store_; }
  const WebTraceModel& model() const { return model_; }

 private:
  WebTraceModel model_;
  util::ZipfSampler zipf_;
  http::ObjectStore store_;
};

}  // namespace whodunit::workload

#endif  // SRC_WORKLOAD_WEBTRACE_H_
