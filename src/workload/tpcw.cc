#include "src/workload/tpcw.h"

#include <cassert>

namespace whodunit::workload {
namespace {

using Kind = db::QueryStep::Kind;

struct MixEntry {
  TpcwTransaction t;
  double percent;
};

// TPC-W browsing mix (WIPSb), per the specification.
constexpr std::array<MixEntry, kTpcwTransactionCount> kBrowsingMix = {{
    {TpcwTransaction::kAdminConfirm, 0.09},
    {TpcwTransaction::kAdminRequest, 0.10},
    {TpcwTransaction::kBestSellers, 11.00},
    {TpcwTransaction::kBuyConfirm, 0.69},
    {TpcwTransaction::kBuyRequest, 0.75},
    {TpcwTransaction::kCustomerRegistration, 0.82},
    {TpcwTransaction::kHome, 29.00},
    {TpcwTransaction::kNewProducts, 11.00},
    {TpcwTransaction::kOrderDisplay, 0.25},
    {TpcwTransaction::kOrderInquiry, 0.30},
    {TpcwTransaction::kProductDetail, 21.00},
    {TpcwTransaction::kSearchRequest, 12.00},
    {TpcwTransaction::kSearchResult, 11.00},
    {TpcwTransaction::kShoppingCart, 2.00},
}};

constexpr uint64_t kItemRows = 10000;
constexpr uint64_t kOrderLineRows = 77000;

}  // namespace

const char* TpcwName(TpcwTransaction t) {
  switch (t) {
    case TpcwTransaction::kAdminConfirm: return "AdminConfirm";
    case TpcwTransaction::kAdminRequest: return "AdminRequest";
    case TpcwTransaction::kBestSellers: return "BestSellers";
    case TpcwTransaction::kBuyConfirm: return "BuyConfirm";
    case TpcwTransaction::kBuyRequest: return "BuyRequest";
    case TpcwTransaction::kCustomerRegistration: return "CustomerRegistration";
    case TpcwTransaction::kHome: return "Home";
    case TpcwTransaction::kNewProducts: return "NewProducts";
    case TpcwTransaction::kOrderDisplay: return "OrderDisplay";
    case TpcwTransaction::kOrderInquiry: return "OrderInquiry";
    case TpcwTransaction::kProductDetail: return "ProductDetail";
    case TpcwTransaction::kSearchRequest: return "SearchRequest";
    case TpcwTransaction::kSearchResult: return "SearchResult";
    case TpcwTransaction::kShoppingCart: return "ShoppingCart";
  }
  return "?";
}

double BrowsingMixPercent(TpcwTransaction t) {
  for (const MixEntry& e : kBrowsingMix) {
    if (e.t == t) {
      return e.percent;
    }
  }
  return 0.0;
}

TpcwTransaction SampleBrowsingMix(util::Rng& rng) {
  double u = rng.NextDouble() * 100.0;
  for (const MixEntry& e : kBrowsingMix) {
    if (u < e.percent) {
      return e.t;
    }
    u -= e.percent;
  }
  return TpcwTransaction::kHome;
}

db::Query TpcwQuery(TpcwTransaction t, util::Rng& rng) {
  db::Query q;
  q.name = TpcwName(t);
  switch (t) {
    case TpcwTransaction::kBestSellers:
      // Join of recent order_lines with item, sorted by sales: the
      // heaviest read query (paper: 51.5% of MySQL CPU).
      q.steps = {
          {Kind::kScan, "order_line", 60000},
          {Kind::kScan, "item", 40000},
          {Kind::kSort, "", 33000},
          {Kind::kTempTable, "", 3000},
      };
      break;
    case TpcwTransaction::kSearchResult:
      // Search by subject/title/author with a sort over matches.
      q.steps = {
          {Kind::kScan, "item", 50000},
          {Kind::kScan, "author", 25000},
          {Kind::kSort, "", 28000},
      };
      break;
    case TpcwTransaction::kAdminConfirm:
      // Sorting of table records, a temporary table, and an UPDATE of
      // one item row (paper §8.4). Rare but enormous, and the UPDATE
      // is what needs an exclusive lock on `item`.
      q.steps = {
          {Kind::kScan, "item", 100000},
          {Kind::kScan, "order_line", 60000},
          {Kind::kSort, "", 60000},
          {Kind::kTempTable, "", 20000},
          {Kind::kUpdateRow, "item", 1, rng.NextBelow(kItemRows)},
      };
      break;
    case TpcwTransaction::kNewProducts:
      q.steps = {
          {Kind::kScan, "item", 9000},
          {Kind::kSort, "", 1800},
      };
      break;
    case TpcwTransaction::kHome:
      q.steps = {
          {Kind::kPointRead, "customer", 1, rng.NextBelow(2880)},
          {Kind::kScan, "item", 700},
      };
      break;
    case TpcwTransaction::kProductDetail:
      q.steps = {
          {Kind::kPointRead, "item", 1, rng.NextBelow(kItemRows)},
          {Kind::kPointRead, "author", 1},
      };
      break;
    case TpcwTransaction::kSearchRequest:
      q.steps = {
          {Kind::kScan, "item", 500},
      };
      break;
    case TpcwTransaction::kShoppingCart:
      q.steps = {
          {Kind::kScan, "shopping_cart_line", 900},
          {Kind::kPointRead, "item", 1, rng.NextBelow(kItemRows)},
      };
      break;
    case TpcwTransaction::kBuyRequest:
      q.steps = {
          {Kind::kPointRead, "customer", 1},
          {Kind::kScan, "shopping_cart_line", 800},
          {Kind::kPointRead, "address", 1},
      };
      break;
    case TpcwTransaction::kBuyConfirm:
      q.steps = {
          {Kind::kScan, "shopping_cart_line", 800},
          {Kind::kUpdateRow, "orders", 1, rng.NextBelow(25920)},
          {Kind::kUpdateRow, "order_line", 1, rng.NextBelow(kOrderLineRows)},
          {Kind::kUpdateRow, "cc_xacts", 1, rng.NextBelow(25920)},
      };
      break;
    case TpcwTransaction::kOrderDisplay:
      q.steps = {
          {Kind::kPointRead, "orders", 1},
          {Kind::kScan, "order_line", 900},
      };
      break;
    case TpcwTransaction::kOrderInquiry:
      q.steps = {
          {Kind::kPointRead, "customer", 1},
      };
      break;
    case TpcwTransaction::kCustomerRegistration:
      q.steps = {
          {Kind::kPointRead, "customer", 1},
      };
      break;
    case TpcwTransaction::kAdminRequest:
      q.steps = {
          {Kind::kPointRead, "item", 1, rng.NextBelow(kItemRows)},
          {Kind::kPointRead, "author", 1},
      };
      break;
  }
  return q;
}

bool IsCacheable(TpcwTransaction t) {
  // TPC-W clause 6.3.3.1 (paper §8.4): BestSellers and SearchResult
  // results may be cached.
  return t == TpcwTransaction::kBestSellers || t == TpcwTransaction::kSearchResult;
}

void CreateTpcwTables(db::Database& database, db::LockGranularity item_granularity) {
  database.CreateTable("item", kItemRows, item_granularity);
  database.CreateTable("author", 2500, db::LockGranularity::kTableLocks);
  database.CreateTable("customer", 2880, db::LockGranularity::kTableLocks);
  database.CreateTable("address", 5760, db::LockGranularity::kTableLocks);
  database.CreateTable("orders", 25920, db::LockGranularity::kTableLocks);
  database.CreateTable("order_line", kOrderLineRows, db::LockGranularity::kTableLocks);
  database.CreateTable("cc_xacts", 25920, db::LockGranularity::kTableLocks);
  database.CreateTable("shopping_cart_line", 5000, db::LockGranularity::kTableLocks);
}

}  // namespace whodunit::workload
