// Open-loop arrival processes for million-client workloads.
//
// The seed apps drive load closed-loop: one coroutine per simulated
// client thinks, sends, waits, repeats. That couples offered load to
// response time (a saturated server slows its own clients down) and
// costs a live coroutine per client, which caps the population at
// thousands. Production traffic is open-loop: requests arrive on their
// own clock whether or not earlier ones finished. This module supplies
// that clock.
//
// A population of N independent Poisson clients superposes into one
// Poisson process of rate N*lambda, so a single generator coroutine
// can stand in for ~10k logical clients (kClientsPerGenerator): it
// draws interarrival gaps from the aggregate process and injects one
// request per arrival. Memory is then proportional to in-flight
// requests (offered load x response time), not to the client
// population — which is what makes per-client memory flat from 1k to
// 1M clients (bench_scaling_clients).
//
// Determinism: each generator owns a util::Rng seeded as
// seed + generator-index, and a shard's generator indices depend only
// on the shard split (never on thread count), so open-loop runs keep
// the shard-merge byte-identity contract. See docs/PRODUCTION.md for
// the operator-facing knobs.
#ifndef SRC_WORKLOAD_ARRIVALS_H_
#define SRC_WORKLOAD_ARRIVALS_H_

#include <cstdint>
#include <string>

#include "src/sim/time.h"
#include "src/util/rng.h"

namespace whodunit::workload {

enum class ArrivalKind {
  kClosed,   // legacy think-send-wait loop, one coroutine per client
  kPoisson,  // open loop, exponential interarrivals
  kBursty,   // open loop, 2-state MMPP (on/off modulated Poisson)
};

// Parses "closed" / "poisson" / "bursty" (the --arrivals CLI values).
// Returns false and leaves *out untouched on unknown input.
bool ParseArrivalKind(const std::string& s, ArrivalKind* out);
const char* ArrivalKindName(ArrivalKind kind);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kClosed;

  // Aggregate offered load in transactions/second across the whole
  // client population. 0 = derive from the population: clients x
  // (1 / per-client mean think time), i.e. the rate the closed-loop
  // population would offer if it never had to wait.
  double offered_load_tps = 0.0;

  // Logical clients one generator coroutine stands in for.
  uint64_t clients_per_generator = 10000;

  // Bursty (MMPP) shape: the ON state offers burst_factor x the mean
  // rate; dwell times in each state are exponential with these means.
  // The OFF-state rate is solved so the long-run mean equals
  // offered_load_tps (clamped at >= 0).
  double burst_factor = 4.0;
  sim::SimTime burst_on_mean = sim::Seconds(2);
  sim::SimTime burst_off_mean = sim::Seconds(8);
};

// Returns the aggregate offered rate (txn/sec) for `clients` logical
// clients: cfg.offered_load_tps if set, else clients / think_mean.
double EffectiveOfferedTps(const ArrivalConfig& cfg, uint64_t clients,
                           sim::SimTime per_client_think_mean);

// One generator's arrival clock: a deterministic stream of
// interarrival gaps for an aggregate rate of `tps` transactions/sec.
//
// Poisson: exponential gaps with mean 1/tps.
// Bursty: a 2-state Markov-modulated Poisson process. The state
// (on/off) dwells exponentially; arrivals within a state are Poisson
// at that state's rate. A gap that crosses a state boundary is drawn
// piecewise, so the process is exact, not an approximation.
class ArrivalProcess {
 public:
  // `tps` must be > 0 for open-loop kinds.
  ArrivalProcess(const ArrivalConfig& cfg, double tps, uint64_t seed);

  // Virtual ns until the next arrival (>= 1).
  sim::SimTime NextInterarrival();

  uint64_t arrivals_drawn() const { return arrivals_drawn_; }

 private:
  double RateNow() const { return on_ ? rate_on_ : rate_off_; }

  util::Rng rng_;
  ArrivalKind kind_;
  double rate_on_ = 0.0;   // arrivals per virtual ns in the ON state
  double rate_off_ = 0.0;  // arrivals per virtual ns in the OFF state
  sim::SimTime on_mean_ = 0;
  sim::SimTime off_mean_ = 0;
  bool on_ = true;
  sim::SimTime state_left_ = 0;  // virtual ns until the state flips
  uint64_t arrivals_drawn_ = 0;
};

}  // namespace whodunit::workload

#endif  // SRC_WORKLOAD_ARRIVALS_H_
