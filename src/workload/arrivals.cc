#include "src/workload/arrivals.h"

#include <algorithm>
#include <cmath>

namespace whodunit::workload {
namespace {

constexpr double kNsPerSec = 1e9;

sim::SimTime ToNsAtLeastOne(double ns) {
  if (ns < 1.0) {
    return 1;
  }
  return static_cast<sim::SimTime>(std::llround(ns));
}

}  // namespace

bool ParseArrivalKind(const std::string& s, ArrivalKind* out) {
  if (s == "closed") {
    *out = ArrivalKind::kClosed;
  } else if (s == "poisson") {
    *out = ArrivalKind::kPoisson;
  } else if (s == "bursty") {
    *out = ArrivalKind::kBursty;
  } else {
    return false;
  }
  return true;
}

const char* ArrivalKindName(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kClosed:
      return "closed";
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
  }
  return "unknown";
}

double EffectiveOfferedTps(const ArrivalConfig& cfg, uint64_t clients,
                           sim::SimTime per_client_think_mean) {
  if (cfg.offered_load_tps > 0.0) {
    return cfg.offered_load_tps;
  }
  if (per_client_think_mean <= 0) {
    return static_cast<double>(clients);
  }
  return static_cast<double>(clients) *
         (kNsPerSec / static_cast<double>(per_client_think_mean));
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig& cfg, double tps,
                               uint64_t seed)
    : rng_(seed), kind_(cfg.kind) {
  const double mean_rate = tps / kNsPerSec;  // arrivals per virtual ns
  if (kind_ != ArrivalKind::kBursty) {
    rate_on_ = rate_off_ = mean_rate;
    return;
  }
  on_mean_ = std::max<sim::SimTime>(1, cfg.burst_on_mean);
  off_mean_ = std::max<sim::SimTime>(1, cfg.burst_off_mean);
  const double p_on = static_cast<double>(on_mean_) /
                      static_cast<double>(on_mean_ + off_mean_);
  const double factor = std::max(1.0, cfg.burst_factor);
  rate_on_ = factor * mean_rate;
  // Solve the OFF rate so the long-run mean is exactly the target;
  // if the burst alone overshoots it, dial the ON rate back instead.
  rate_off_ = (mean_rate - p_on * rate_on_) / (1.0 - p_on);
  if (rate_off_ < 0.0) {
    rate_off_ = 0.0;
    rate_on_ = mean_rate / p_on;
  }
  on_ = true;
  state_left_ = ToNsAtLeastOne(
      rng_.NextExponential(static_cast<double>(on_mean_)));
}

sim::SimTime ArrivalProcess::NextInterarrival() {
  ++arrivals_drawn_;
  if (kind_ != ArrivalKind::kBursty) {
    return ToNsAtLeastOne(rng_.NextExponential(1.0 / rate_on_));
  }
  // Piecewise draw across state boundaries. Exponential memorylessness
  // makes redrawing at each flip exact for the MMPP.
  double elapsed = 0.0;
  for (;;) {
    const double rate = RateNow();
    if (rate > 0.0) {
      const double gap = rng_.NextExponential(1.0 / rate);
      if (gap < static_cast<double>(state_left_)) {
        state_left_ -= static_cast<sim::SimTime>(gap);
        return ToNsAtLeastOne(elapsed + gap);
      }
    }
    // No arrival before the state flips: consume the dwell remainder.
    elapsed += static_cast<double>(state_left_);
    on_ = !on_;
    state_left_ = ToNsAtLeastOne(rng_.NextExponential(
        static_cast<double>(on_ ? on_mean_ : off_mean_)));
  }
}

}  // namespace whodunit::workload
