// Calibration constants for the reproduced experiments.
//
// The paper's absolute numbers come from a 2.4 GHz Pentium Xeon
// cluster on switched Gigabit Ethernet that we do not have; instead,
// every cost constant the simulation uses is defined here, chosen once
// so the BASELINE operating points land near the paper's (TPC-W
// no-cache peak ≈ 1184 tx/min; Apache peak ≈ 390 Mb/s; AdminConfirm
// ≈ 640 ms at 100 clients), and then held fixed while experiments vary
// only the mechanism under test. EXPERIMENTS.md records paper-vs-
// measured for every figure and table.
#ifndef SRC_WORKLOAD_CALIBRATION_H_
#define SRC_WORKLOAD_CALIBRATION_H_

#include "src/sim/time.h"

namespace whodunit::workload {

// ---- Hardware model ---------------------------------------------------
// 2.4 GHz: cycles <-> virtual nanoseconds.
inline constexpr double kCyclesPerNanosecond = 2.4;
inline constexpr sim::SimTime CyclesToNs(int64_t cycles) {
  return static_cast<sim::SimTime>(static_cast<double>(cycles) / kCyclesPerNanosecond);
}

// Switched gigabit ethernet: ~30 us one-way for small messages.
inline constexpr sim::SimTime kLanLatency = sim::Micros(30);
// Wire time per byte at 1 Gb/s ≈ 0.8 ns (modelled only where byte
// volume matters, i.e. large response bodies).
inline constexpr double kWireNsPerByte = 0.8;

// ---- Profiler costs (paper §9.1) ---------------------------------------
// gprof's default sampling frequency on the paper's platform: 666 Hz.
inline constexpr sim::SimTime kSamplePeriod = 1501501;  // ns
// One csprof sample: signal delivery + stack walk.
inline constexpr sim::SimTime kPerSampleCost = sim::Nanos(900);
// gprof mcount per procedure entry.
inline constexpr sim::SimTime kPerCallCost = sim::Nanos(120);
// Whodunit synopsis compute/propagate per message.
inline constexpr sim::SimTime kPerMessageContextCost = sim::Nanos(250);

// ---- Web server / proxy / SEDA costs ------------------------------------
// Per-request protocol work (parse, headers, logging).
inline constexpr sim::SimTime kHttpParseCost = sim::Micros(25);
// sendfile-style transmit cost per byte (dominates large responses).
inline constexpr double kSendNsPerByte = 37.0;
// Accept path: kernel accept + connection setup.
inline constexpr sim::SimTime kAcceptCost = sim::Micros(18);
// Proxy cache lookup / store.
inline constexpr sim::SimTime kCacheLookupCost = sim::Micros(8);
// Origin server service per request (disk cache hit at the origin).
inline constexpr sim::SimTime kOriginServiceCost = sim::Micros(120);
// Proxy data path cost per byte (userspace recv+send, no sendfile).
inline constexpr double kProxyNsPerByte = 18.0;
// Whodunit's per-event-dispatch tracking work in an instrumented event
// library (context concat, pruning, annotation) — the source of the
// §9.3 Squid/Haboob overheads.
inline constexpr sim::SimTime kPerEventTrackingCost = sim::Nanos(3500);
// Proxy object cache capacity (objects).
inline constexpr size_t kProxyCacheObjects = 2500;
// Per-stage-dispatch tracking work in the instrumented SEDA middleware
// (Java object allocation + hashtable update per queue element).
inline constexpr sim::SimTime kSedaTrackingCost = sim::Micros(15);
// SEDA per-stage dispatch overhead (queue + scheduling), making the
// SEDA server markedly slower than Apache — Haboob peaks at ~31 Mb/s
// vs Apache's ~394 Mb/s in the paper.
inline constexpr sim::SimTime kSedaStageDispatchCost = sim::Micros(150);
inline constexpr double kSedaSendNsPerByte = 300.0;  // Java I/O path

// ---- Rice web trace model ----------------------------------------------
inline constexpr uint64_t kTraceObjects = 20000;
inline constexpr double kTraceZipfTheta = 0.85;
inline constexpr uint64_t kTraceMinObjectBytes = 1200;
inline constexpr uint64_t kTraceMaxObjectBytes = 2 * 1024 * 1024;
// Requests per connection before the client reconnects (the paper's
// §9.2 workload: "open new connections, send a few HTTP requests over
// them, close").
inline constexpr int kRequestsPerConnectionMean = 6;

// ---- TPC-W model ---------------------------------------------------------
// Closed-loop client think time (TPC-W browsing mix).
inline constexpr sim::SimTime kTpcwThinkTimeMean = sim::Millis(7000);
// Tomcat servlet page generation per dynamic interaction.
inline constexpr sim::SimTime kServletCost = sim::Millis(22);
// Serving a cached BestSellers/SearchResult page from the servlet cache.
inline constexpr sim::SimTime kServletCacheHitCost = sim::Millis(2);
// Squid work per forwarded dynamic request (miss path).
inline constexpr sim::SimTime kProxyForwardCost = sim::Micros(600);
// Squid work per cached static object (images).
inline constexpr sim::SimTime kProxyStaticHitCost = sim::Micros(200);
// Static images fetched per dynamic page.
inline constexpr int kStaticImagesPerPage = 3;
// Result-cache TTL for BestSellers / SearchResult (TPC-W clause
// 6.3.3.1 allows 30 s).
inline constexpr sim::SimTime kResultCacheTtl = sim::Seconds(30);

// Cores per stage machine (one-socket 2007 Xeon boxes).
inline constexpr int kProxyCores = 1;
inline constexpr int kAppServerCores = 1;
inline constexpr int kDbCores = 1;
inline constexpr int kWebServerCores = 2;  // Apache box: HT pays off here

}  // namespace whodunit::workload

#endif  // SRC_WORKLOAD_CALIBRATION_H_
