// gprof-style call-graph report over a CCT.
//
// The paper contrasts Whodunit with gprof (§8.4: "Such separation of
// resource utilization at MySQL would not have been possible by using
// a conventional profiler, e.g., gprof"). This renderer produces the
// conventional view — a flat profile plus caller/callee arcs with
// self/children attribution — from the same data, so examples and
// benches can show side by side what the conventional profiler reports
// and what the transactional profile adds.
#ifndef SRC_CALLPATH_GPROF_REPORT_H_
#define SRC_CALLPATH_GPROF_REPORT_H_

#include <string>
#include <vector>

#include "src/callpath/cct.h"
#include "src/callpath/function_registry.h"

namespace whodunit::callpath {

struct GprofArc {
  FunctionId caller;
  FunctionId callee;
  uint64_t calls = 0;
  sim::SimTime callee_inclusive = 0;  // time in callee (and below) via this arc
};

struct GprofEntry {
  FunctionId function;
  sim::SimTime self = 0;      // exclusive time
  sim::SimTime children = 0;  // inclusive minus exclusive
  uint64_t calls = 0;
  std::vector<GprofArc> callers;  // arcs into this function
  std::vector<GprofArc> callees;  // arcs out of this function
};

// Collapses a CCT (or several merged CCTs) into gprof's call-graph
// form: per-function totals and caller/callee arcs. Context
// sensitivity beyond one level is lost — which is the point.
std::vector<GprofEntry> BuildGprofEntries(const CallingContextTree& cct);

// Classic two-part listing: flat profile, then the call graph.
std::string RenderGprofReport(const CallingContextTree& cct, const FunctionRegistry& registry,
                              size_t max_entries = 20);

}  // namespace whodunit::callpath

#endif  // SRC_CALLPATH_GPROF_REPORT_H_
