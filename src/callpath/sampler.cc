#include "src/callpath/sampler.h"

namespace whodunit::callpath {

Sampler::Sampler(sim::SimTime period)
    : period_(period),
      obs_samples_taken_(&obs::Registry().GetCounter("sampler.samples_taken")),
      obs_samples_dropped_(&obs::Registry().GetCounter("sampler.samples_dropped_detached")),
      obs_stack_depth_(&obs::Registry().GetHistogram("sampler.shadow_stack_depth",
                                                     obs::DefaultDepthBounds())) {}

void Sampler::OnCpu(ShadowStack& stack, sim::SimTime cost) {
  if (cost <= 0) {
    return;
  }
  CallingContextTree* cct = stack.cct();
  if (cct == nullptr) {
    // Detached: stage not being profiled. The samples a periodic timer
    // would have delivered over this charge are dropped.
    obs_samples_dropped_->Add(static_cast<uint64_t>(cost / period_));
    return;
  }
  const NodeIndex node = stack.current_node();
  cct->AddCpuTime(node, cost);
  residue_ += cost;
  const uint64_t fired = static_cast<uint64_t>(residue_ / period_);
  if (fired > 0) {
    residue_ -= static_cast<sim::SimTime>(fired) * period_;
    cct->AddSample(node, fired);
    samples_taken_ += fired;
    obs_samples_taken_->Add(fired);
    obs_stack_depth_->Observe(stack.depth());
  }
}

}  // namespace whodunit::callpath
