#include "src/callpath/sampler.h"

namespace whodunit::callpath {

void Sampler::OnCpu(ShadowStack& stack, sim::SimTime cost) {
  if (cost <= 0) {
    return;
  }
  CallingContextTree* cct = stack.cct();
  if (cct == nullptr) {
    return;  // detached: stage not being profiled
  }
  const NodeIndex node = stack.current_node();
  cct->AddCpuTime(node, cost);
  residue_ += cost;
  const uint64_t fired = static_cast<uint64_t>(residue_ / period_);
  if (fired > 0) {
    residue_ -= static_cast<sim::SimTime>(fired) * period_;
    cct->AddSample(node, fired);
    samples_taken_ += fired;
  }
}

}  // namespace whodunit::callpath
