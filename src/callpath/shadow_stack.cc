#include "src/callpath/shadow_stack.h"

namespace whodunit::callpath {

void ShadowStack::Push(FunctionId f) {
  frames_.push_back(f);
  ++pushes_;
  if (cct_ != nullptr) {
    node_path_.push_back(cct_->Child(node_path_.back(), f));
    cct_->AddCall(node_path_.back());
  }
}

void ShadowStack::Pop() {
  frames_.pop_back();
  if (cct_ != nullptr) {
    node_path_.pop_back();
  }
}

void ShadowStack::AttachCct(CallingContextTree* cct) {
  cct_ = cct;
  node_path_.clear();
  if (cct_ == nullptr) {
    return;
  }
  node_path_.push_back(cct_->root());
  for (FunctionId f : frames_) {
    node_path_.push_back(cct_->Child(node_path_.back(), f));
  }
}

}  // namespace whodunit::callpath
