// Profiler operating modes and their simulated runtime costs.
//
// The paper's Table 2 compares TPC-W peak throughput under no
// profiling, csprof, Whodunit, and gprof. The decisive difference is
// the cost structure:
//   * csprof / Whodunit sample: cost proportional to elapsed time
//     (one signal handler + stack walk per sample);
//   * gprof instruments every procedure call: cost proportional to the
//     number of calls executed (mcount per entry), which is why its
//     overhead is an order of magnitude larger on call-dense servers;
//   * Whodunit additionally pays a small per-message context
//     propagation cost and per-critical-section emulation cost.
//
// The per-event constants here are the simulation's model of those
// costs; workload/calibration.h documents how they were chosen.
#ifndef SRC_CALLPATH_PROFILER_MODE_H_
#define SRC_CALLPATH_PROFILER_MODE_H_

#include "src/sim/time.h"

namespace whodunit::callpath {

enum class ProfilerMode {
  kNone,      // profiling disabled
  kCsprof,    // sampling call-path profiler only
  kWhodunit,  // csprof + transaction tracking (the full system)
  kGprof,     // per-call instrumenting profiler
};

struct ProfilerCosts {
  // Handler cost of taking one statistical sample (csprof/Whodunit).
  sim::SimTime per_sample = sim::Nanos(900);
  // mcount bookkeeping per procedure entry (gprof).
  sim::SimTime per_call = sim::Nanos(120);
  // Whodunit: computing/propagating a synopsis per message send/recv.
  sim::SimTime per_message_context = sim::Nanos(250);
};

// True when the mode collects statistical samples. All three profilers
// sample time at the same frequency (paper §9.1: "We used the same
// sampling frequency for csprof, Whodunit and gprof"); gprof adds call
// instrumentation on top.
constexpr bool Samples(ProfilerMode m) { return m != ProfilerMode::kNone; }

// True when the mode instruments procedure entries.
constexpr bool CountsCalls(ProfilerMode m) { return m == ProfilerMode::kGprof; }

// True when transaction contexts are tracked and propagated.
constexpr bool TracksTransactions(ProfilerMode m) { return m == ProfilerMode::kWhodunit; }

}  // namespace whodunit::callpath

#endif  // SRC_CALLPATH_PROFILER_MODE_H_
