#include "src/callpath/cct.h"

#include <algorithm>
#include <sstream>

namespace whodunit::callpath {

CallingContextTree::CallingContextTree() {
  nodes_.push_back(Node{});  // root: synthetic "program" node
}

NodeIndex CallingContextTree::Child(NodeIndex node, FunctionId f) {
  auto& children = nodes_[node].children;
  auto it = children.find(f);
  if (it != children.end()) {
    return it->second;
  }
  const auto idx = static_cast<NodeIndex>(nodes_.size());
  Node child;
  child.function = f;
  child.parent = node;
  nodes_.push_back(child);
  nodes_[node].children.emplace(f, idx);
  return idx;
}

NodeIndex CallingContextTree::PathNode(const std::vector<FunctionId>& path) {
  NodeIndex n = root();
  for (FunctionId f : path) {
    n = Child(n, f);
  }
  return n;
}

std::vector<FunctionId> CallingContextTree::PathTo(NodeIndex node) const {
  std::vector<FunctionId> path;
  while (node != root() && node != kNoNode) {
    path.push_back(nodes_[node].function);
    node = nodes_[node].parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

uint64_t CallingContextTree::InclusiveSamples(NodeIndex node) const {
  uint64_t total = nodes_[node].samples;
  for (const auto& [f, child] : nodes_[node].children) {
    total += InclusiveSamples(child);
  }
  return total;
}

sim::SimTime CallingContextTree::InclusiveCpuTime(NodeIndex node) const {
  sim::SimTime total = nodes_[node].cpu_time;
  for (const auto& [f, child] : nodes_[node].children) {
    total += InclusiveCpuTime(child);
  }
  return total;
}

void CallingContextTree::MergeFrom(const CallingContextTree& other) {
  MergeSubtree(other, other.root(), root(), nullptr);
}

void CallingContextTree::MergeFrom(const CallingContextTree& other,
                                   const std::vector<FunctionId>& fn_remap) {
  MergeSubtree(other, other.root(), root(), &fn_remap);
}

void CallingContextTree::MergeSubtree(const CallingContextTree& other, NodeIndex theirs,
                                      NodeIndex mine, const std::vector<FunctionId>* fn_remap) {
  nodes_[mine].samples += other.nodes_[theirs].samples;
  nodes_[mine].cpu_time += other.nodes_[theirs].cpu_time;
  nodes_[mine].calls += other.nodes_[theirs].calls;
  for (const auto& [f, their_child] : other.nodes_[theirs].children) {
    const FunctionId mapped = fn_remap != nullptr && f < fn_remap->size() ? (*fn_remap)[f] : f;
    MergeSubtree(other, their_child, Child(mine, mapped), fn_remap);
  }
}

namespace {

void RenderNode(const CallingContextTree& cct, const FunctionRegistry& registry, NodeIndex node,
                int depth, double total, double min_fraction, std::ostringstream& out) {
  const auto inclusive = static_cast<double>(cct.InclusiveCpuTime(node));
  if (total > 0 && inclusive / total < min_fraction) {
    return;
  }
  if (node != cct.root()) {
    for (int i = 0; i < depth; ++i) {
      out << "  ";
    }
    const auto& n = cct.node(node);
    out << registry.NameOf(n.function) << "  samples=" << cct.InclusiveSamples(node)
        << " cpu=" << sim::ToMillis(cct.InclusiveCpuTime(node)) << "ms";
    if (total > 0) {
      out << " (" << 100.0 * inclusive / total << "%)";
    }
    out << "\n";
  }
  for (const auto& [f, child] : cct.node(node).children) {
    RenderNode(cct, registry, child, node == cct.root() ? depth : depth + 1, total, min_fraction,
               out);
  }
}

}  // namespace

std::string CallingContextTree::Render(const FunctionRegistry& registry,
                                       double min_fraction) const {
  std::ostringstream out;
  RenderNode(*this, registry, root(), 0, static_cast<double>(TotalCpuTime()), min_fraction, out);
  return out.str();
}

}  // namespace whodunit::callpath
