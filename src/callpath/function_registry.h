// Function name <-> id registry shared by a profiling domain.
//
// Whodunit's core is a call-path profiler (the paper builds on csprof);
// every procedure the applications execute is registered here once and
// referenced by FunctionId everywhere else.
#ifndef SRC_CALLPATH_FUNCTION_REGISTRY_H_
#define SRC_CALLPATH_FUNCTION_REGISTRY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/interner.h"

namespace whodunit::callpath {

using FunctionId = uint32_t;

class FunctionRegistry {
 public:
  FunctionId Register(std::string_view name) { return interner_.Intern(name); }
  const std::string& NameOf(FunctionId id) const { return interner_.NameOf(id); }
  size_t size() const { return interner_.size(); }

 private:
  util::StringInterner interner_;
};

}  // namespace whodunit::callpath

#endif  // SRC_CALLPATH_FUNCTION_REGISTRY_H_
