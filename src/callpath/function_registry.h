// Function name <-> id registry shared by a profiling domain.
//
// Whodunit's core is a call-path profiler (the paper builds on csprof);
// every procedure the applications execute is registered here once and
// referenced by FunctionId everywhere else.
#ifndef SRC_CALLPATH_FUNCTION_REGISTRY_H_
#define SRC_CALLPATH_FUNCTION_REGISTRY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/interner.h"

namespace whodunit::callpath {

using FunctionId = uint32_t;

class FunctionRegistry {
 public:
  FunctionId Register(std::string_view name) { return interner_.Intern(name); }
  const std::string& NameOf(FunctionId id) const { return interner_.NameOf(id); }
  size_t size() const { return interner_.size(); }

  // Registers every function of `other` here (by name) and returns
  // the id translation: remap[id_in_other] = id_here. Used when
  // merging profiles from shard deployments, whose registries assigned
  // ids independently.
  std::vector<FunctionId> MergeFrom(const FunctionRegistry& other) {
    std::vector<FunctionId> remap(other.size());
    for (FunctionId id = 0; id < other.size(); ++id) {
      remap[id] = Register(other.NameOf(id));
    }
    return remap;
  }

 private:
  util::StringInterner interner_;
};

}  // namespace whodunit::callpath

#endif  // SRC_CALLPATH_FUNCTION_REGISTRY_H_
