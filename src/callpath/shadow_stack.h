// Shadow call stack for one simulated thread of control.
//
// The simulated applications declare their procedure structure with
// ScopedFrame guards; the stack mirrors the call path the hardware
// stack would hold, and tracks the matching node in the currently
// attached CCT so that sampling is O(1).
//
// Whodunit switches a thread between CCTs when its transaction context
// changes (paper §7.1); AttachCct replays the live call path into the
// new tree so profile samples continue at the right node.
#ifndef SRC_CALLPATH_SHADOW_STACK_H_
#define SRC_CALLPATH_SHADOW_STACK_H_

#include <cstdint>
#include <vector>

#include "src/callpath/cct.h"
#include "src/callpath/function_registry.h"

namespace whodunit::callpath {

class ShadowStack {
 public:
  // The stack starts detached; samples are dropped until a CCT is
  // attached.
  ShadowStack() = default;

  void Push(FunctionId f);
  void Pop();

  // Attaches (or switches) the CCT samples flow into; replays the
  // current call path into it. Pass nullptr to detach.
  void AttachCct(CallingContextTree* cct);
  CallingContextTree* cct() const { return cct_; }

  // Node in the attached CCT matching the current call path;
  // kNoNode when detached.
  NodeIndex current_node() const { return cct_ ? node_path_.back() : kNoNode; }

  // The current call path, root-first.
  const std::vector<FunctionId>& path() const { return frames_; }
  size_t depth() const { return frames_.size(); }

  uint64_t pushes() const { return pushes_; }

 private:
  std::vector<FunctionId> frames_;
  // node_path_[i] is the CCT node for the path prefix of length i;
  // node_path_[0] is the root. Only valid when cct_ != nullptr.
  std::vector<NodeIndex> node_path_{0};
  CallingContextTree* cct_ = nullptr;
  uint64_t pushes_ = 0;
};

// RAII frame: push on construction, pop on destruction. Safe to hold
// across co_await (the shadow stack belongs to the simulated thread,
// not the host thread).
class ScopedFrame {
 public:
  ScopedFrame(ShadowStack& stack, FunctionId f) : stack_(stack) { stack_.Push(f); }
  ~ScopedFrame() { stack_.Pop(); }
  ScopedFrame(const ScopedFrame&) = delete;
  ScopedFrame& operator=(const ScopedFrame&) = delete;

 private:
  ShadowStack& stack_;
};

}  // namespace whodunit::callpath

#endif  // SRC_CALLPATH_SHADOW_STACK_H_
