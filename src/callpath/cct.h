// Calling Context Tree (CCT), after Ammons/Ball/Larus [5] and csprof.
//
// Each node is one call path (the chain of FunctionIds from the root).
// Profile samples and virtual CPU time accumulate on the node that was
// executing when the sample fired. Whodunit labels whole CCTs with a
// transaction-context synopsis and switches between them as
// transactions move through a stage (paper §7.1).
#ifndef SRC_CALLPATH_CCT_H_
#define SRC_CALLPATH_CCT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/callpath/function_registry.h"
#include "src/sim/time.h"

namespace whodunit::callpath {

using NodeIndex = uint32_t;
inline constexpr NodeIndex kNoNode = 0xffffffffu;

class CallingContextTree {
 public:
  struct Node {
    FunctionId function = 0;
    NodeIndex parent = kNoNode;
    uint64_t samples = 0;       // statistical samples attributed here (exclusive)
    sim::SimTime cpu_time = 0;  // virtual ns attributed here (exclusive)
    uint64_t calls = 0;         // entry count (used by the gprof baseline)
    // Ordered for deterministic reports.
    std::map<FunctionId, NodeIndex> children;
  };

  CallingContextTree();

  NodeIndex root() const { return 0; }

  // Finds or creates the child of `node` for function f.
  NodeIndex Child(NodeIndex node, FunctionId f);

  // Walks/creates a whole path below the root.
  NodeIndex PathNode(const std::vector<FunctionId>& path);

  void AddSample(NodeIndex node, uint64_t count = 1) { nodes_[node].samples += count; }
  void AddCpuTime(NodeIndex node, sim::SimTime t) { nodes_[node].cpu_time += t; }
  void AddCall(NodeIndex node) { ++nodes_[node].calls; }

  const Node& node(NodeIndex i) const { return nodes_[i]; }
  size_t size() const { return nodes_.size(); }

  // Path from root (exclusive) to node, as function ids.
  std::vector<FunctionId> PathTo(NodeIndex node) const;

  // Sum of samples / cpu_time over the subtree rooted at node.
  uint64_t InclusiveSamples(NodeIndex node) const;
  sim::SimTime InclusiveCpuTime(NodeIndex node) const;

  // Totals over the whole tree.
  uint64_t TotalSamples() const { return InclusiveSamples(root()); }
  sim::SimTime TotalCpuTime() const { return InclusiveCpuTime(root()); }

  // Merges another CCT into this one (summing counters node-by-node).
  void MergeFrom(const CallingContextTree& other);
  // Same, translating the other tree's FunctionIds through `fn_remap`
  // (remap[their_id] = my_id, from FunctionRegistry::MergeFrom) —
  // for merging CCTs built against a different function registry.
  void MergeFrom(const CallingContextTree& other, const std::vector<FunctionId>& fn_remap);

  // Renders an indented text tree: "name  samples=N cpu=Xms (Y%)".
  // Nodes below min_fraction of total inclusive time are elided.
  std::string Render(const FunctionRegistry& registry, double min_fraction = 0.0) const;

 private:
  void MergeSubtree(const CallingContextTree& other, NodeIndex theirs, NodeIndex mine,
                    const std::vector<FunctionId>* fn_remap);

  std::vector<Node> nodes_;
};

}  // namespace whodunit::callpath

#endif  // SRC_CALLPATH_CCT_H_
