// Interning of whole call paths.
//
// A transaction context element of kind kCallPath references an
// interned call path (the paper: "the transaction context at a message
// send point is the call path of the program"). Interning makes those
// elements 4 bytes and comparable by id.
#ifndef SRC_CALLPATH_PATH_TABLE_H_
#define SRC_CALLPATH_PATH_TABLE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/callpath/function_registry.h"

namespace whodunit::callpath {

using PathId = uint32_t;

class CallPathTable {
 public:
  PathId Intern(const std::vector<FunctionId>& path) {
    auto it = ids_.find(path);
    if (it != ids_.end()) {
      return it->second;
    }
    const auto id = static_cast<PathId>(paths_.size());
    paths_.push_back(path);
    ids_.emplace(path, id);
    return id;
  }

  const std::vector<FunctionId>& PathOf(PathId id) const { return paths_.at(id); }
  size_t size() const { return paths_.size(); }

  // "main>handle>send" for reports.
  std::string Render(PathId id, const FunctionRegistry& registry) const {
    std::string out;
    for (FunctionId f : paths_.at(id)) {
      if (!out.empty()) {
        out += ">";
      }
      out += registry.NameOf(f);
    }
    return out;
  }

 private:
  std::map<std::vector<FunctionId>, PathId> ids_;
  std::vector<std::vector<FunctionId>> paths_;
};

}  // namespace whodunit::callpath

#endif  // SRC_CALLPATH_PATH_TABLE_H_
