// Statistical sampling in virtual time (the csprof core, paper §7.1).
//
// csprof samples the program at a fixed frequency (the paper uses
// gprof's default, 666 Hz). In the simulator, CPU consumption arrives
// as discrete charges (cost of a piece of simulated work); the sampler
// converts those charges into the samples a periodic timer would have
// delivered, attributing them to the CCT node executing at charge time.
#ifndef SRC_CALLPATH_SAMPLER_H_
#define SRC_CALLPATH_SAMPLER_H_

#include <cstdint>

#include "src/callpath/shadow_stack.h"
#include "src/obs/metrics.h"
#include "src/sim/time.h"

namespace whodunit::callpath {

class Sampler {
 public:
  // period: virtual ns between samples. The paper's 666 Hz is
  // 1501501 ns; see workload/calibration.h.
  explicit Sampler(sim::SimTime period);

  // Charges `cost` ns of CPU against the thread owning `stack`.
  // Whole elapsed sample periods produce samples on the stack's
  // current CCT node; CPU time is attributed exactly.
  void OnCpu(ShadowStack& stack, sim::SimTime cost);

  uint64_t samples_taken() const { return samples_taken_; }
  sim::SimTime period() const { return period_; }

 private:
  sim::SimTime period_;
  sim::SimTime residue_ = 0;
  uint64_t samples_taken_ = 0;

  // Self-observability handles, resolved once (see docs/METRICS.md).
  obs::Counter* obs_samples_taken_;
  obs::Counter* obs_samples_dropped_;
  obs::Histogram* obs_stack_depth_;
};

}  // namespace whodunit::callpath

#endif  // SRC_CALLPATH_SAMPLER_H_
