#include "src/callpath/gprof_report.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace whodunit::callpath {

std::vector<GprofEntry> BuildGprofEntries(const CallingContextTree& cct) {
  std::map<FunctionId, GprofEntry> entries;
  std::map<std::pair<FunctionId, FunctionId>, GprofArc> arcs;
  constexpr FunctionId kRoot = 0xffffffffu;

  for (NodeIndex i = 1; i < cct.size(); ++i) {
    const auto& node = cct.node(i);
    GprofEntry& entry = entries[node.function];
    entry.function = node.function;
    entry.self += node.cpu_time;
    entry.children += cct.InclusiveCpuTime(i) - node.cpu_time;
    entry.calls += node.calls;

    const FunctionId caller =
        node.parent == cct.root() ? kRoot : cct.node(node.parent).function;
    if (caller != kRoot) {
      GprofArc& arc = arcs[{caller, node.function}];
      arc.caller = caller;
      arc.callee = node.function;
      arc.calls += node.calls;
      arc.callee_inclusive += cct.InclusiveCpuTime(i);
    }
  }

  for (const auto& [key, arc] : arcs) {
    entries[arc.callee].callers.push_back(arc);
    entries[arc.caller].callees.push_back(arc);
  }

  std::vector<GprofEntry> out;
  out.reserve(entries.size());
  for (auto& [fn, entry] : entries) {
    std::sort(entry.callers.begin(), entry.callers.end(),
              [](const GprofArc& a, const GprofArc& b) {
                return a.callee_inclusive > b.callee_inclusive;
              });
    std::sort(entry.callees.begin(), entry.callees.end(),
              [](const GprofArc& a, const GprofArc& b) {
                return a.callee_inclusive > b.callee_inclusive;
              });
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const GprofEntry& a, const GprofEntry& b) { return a.self > b.self; });
  return out;
}

std::string RenderGprofReport(const CallingContextTree& cct, const FunctionRegistry& registry,
                              size_t max_entries) {
  std::vector<GprofEntry> entries = BuildGprofEntries(cct);
  const double total = static_cast<double>(cct.TotalCpuTime());
  std::ostringstream out;

  out << "Flat profile:\n";
  out << "  %   cumulative   self              \n";
  out << " time   seconds   seconds    calls  name\n";
  double cumulative = 0;
  size_t rows = 0;
  for (const GprofEntry& e : entries) {
    if (rows++ >= max_entries) {
      break;
    }
    cumulative += sim::ToSeconds(e.self);
    out << "  " << (total > 0 ? 100.0 * static_cast<double>(e.self) / total : 0.0) << "  "
        << cumulative << "  " << sim::ToSeconds(e.self) << "  " << e.calls << "  "
        << registry.NameOf(e.function) << "\n";
  }

  out << "\nCall graph:\n";
  rows = 0;
  for (const GprofEntry& e : entries) {
    if (rows++ >= max_entries) {
      break;
    }
    for (const GprofArc& arc : e.callers) {
      out << "    <- " << registry.NameOf(arc.caller) << " (" << arc.calls << " calls, "
          << sim::ToMillis(arc.callee_inclusive) << "ms)\n";
    }
    out << "[" << registry.NameOf(e.function) << "] self=" << sim::ToMillis(e.self)
        << "ms children=" << sim::ToMillis(e.children) << "ms calls=" << e.calls << "\n";
    for (const GprofArc& arc : e.callees) {
      out << "    -> " << registry.NameOf(arc.callee) << " (" << arc.calls << " calls, "
          << sim::ToMillis(arc.callee_inclusive) << "ms)\n";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace whodunit::callpath
