// Self-observability: JSON export of metrics and trace spans.
//
// The export is what crosses the process boundary: benches dump
// `BENCH_<name>.metrics.json` at exit so result trajectories carry
// the profiler's internal counters next to the wall-clock numbers,
// and `examples/offline_report` re-reads a dump and renders it. The
// schema (docs/METRICS.md) is deliberately small — flat maps of
// counters and gauges, explicit-bucket histograms, a span array — and
// ParseJson understands exactly that subset, so the round trip needs
// no external JSON dependency.
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace whodunit::obs {

// Serializes a snapshot (and optional spans) as schema-version-1 JSON.
std::string ToJson(const MetricsSnapshot& snapshot,
                   const std::vector<SpanRecord>& spans = {});

// Parses JSON produced by ToJson. Returns false on malformed input or
// wrong schema version. `spans` may be null to skip span decoding.
bool ParseJson(std::string_view json, MetricsSnapshot* out,
               std::vector<SpanRecord>* spans = nullptr);

// Human-readable rendering of a snapshot (one instrument per line,
// histograms with percentile estimates) for reports and examples.
std::string RenderText(const MetricsSnapshot& snapshot,
                       const std::vector<SpanRecord>* spans = nullptr);

// Snapshots the global Registry() and Tracer() and writes the JSON
// dump to `path`. Returns false if the file could not be written.
bool DumpGlobalMetrics(const std::string& path);

}  // namespace whodunit::obs

#endif  // SRC_OBS_EXPORT_H_
