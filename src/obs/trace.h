// Self-observability: lightweight trace spans keyed by transaction
// context.
//
// A span records one unit of dispatched work — an event-handler run,
// a SEDA element — with its virtual-time start and duration and the
// hash of the transaction context it ran under. Spans let a report
// line up the profiler's internal behavior (queueing, dispatch,
// context switches) with the transactions the paper profiles, without
// paying for full context strings on the hot path: the context is
// recorded as its 64-bit hash, joinable against the context
// dictionary post mortem.
//
// The log is a bounded ring: once `capacity` spans are buffered the
// oldest are overwritten and `dropped()` counts the loss — tracing
// must never become the overhead it is meant to observe.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace whodunit::obs {

struct SpanRecord {
  // Instrumentation point, e.g. "events.handler" or "seda.stage".
  std::string name;
  // What ran: handler name, stage name.
  std::string detail;
  // Hash of the transaction context the work ran under (0 = none).
  uint64_t ctxt_hash = 0;
  // Virtual time (ns since simulation start).
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
};

class TraceLog {
 public:
  explicit TraceLog(size_t capacity = kDefaultCapacity);
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  static constexpr size_t kDefaultCapacity = 4096;

  void Record(SpanRecord span);

  // The buffered spans, oldest first.
  std::vector<SpanRecord> Snapshot() const;
  uint64_t recorded() const;
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }
  void Clear();

  // Tracing defaults to on; turn off to make Record a no-op (the
  // counters still run — spans are the expensive part).
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;
  size_t next_ = 0;          // overwrite position once full
  uint64_t recorded_ = 0;
  bool enabled_ = true;
};

// The trace log the built-in instrumentation writes to: normally the
// process-wide one, but a shard isolate (sim::ShardEnv::Scope) can
// install a private log for the calling thread.
TraceLog& Tracer();
// The process-wide default log, regardless of any installed scope.
TraceLog& GlobalTracer();

// Installs `log` as the calling thread's Tracer() for the lifetime of
// the scope; restores the previous target on destruction.
class ScopedTraceLog {
 public:
  explicit ScopedTraceLog(TraceLog& log);
  ~ScopedTraceLog();
  ScopedTraceLog(const ScopedTraceLog&) = delete;
  ScopedTraceLog& operator=(const ScopedTraceLog&) = delete;

 private:
  TraceLog* prev_;
};

}  // namespace whodunit::obs

#endif  // SRC_OBS_TRACE_H_
