#include "src/obs/export.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace whodunit::obs {
namespace {

// ---- writer ---------------------------------------------------------

void AppendEscaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

template <typename T>
void AppendArray(std::string& out, const std::vector<T>& values) {
  out += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(values[i]);
  }
  out += ']';
}

// ---- minimal parser for the schema ToJson emits ---------------------

struct Cursor {
  std::string_view text;
  size_t pos = 0;
  bool ok = true;

  void SkipWs() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool Peek(char c) {
    SkipWs();
    return pos < text.size() && text[pos] == c;
  }
  void Fail() { ok = false; }
};

bool ParseStringToken(Cursor& c, std::string* out) {
  if (!c.Consume('"')) {
    return false;
  }
  out->clear();
  while (c.pos < c.text.size()) {
    char ch = c.text[c.pos++];
    if (ch == '"') {
      return true;
    }
    if (ch == '\\' && c.pos < c.text.size()) {
      char esc = c.text[c.pos++];
      switch (esc) {
        case 'n':
          *out += '\n';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u':
          // Only \u00xx is ever emitted; decode the low byte.
          if (c.pos + 4 <= c.text.size()) {
            unsigned value = 0;
            for (int i = 0; i < 4; ++i) {
              value = value * 16;
              char h = c.text[c.pos + static_cast<size_t>(i)];
              if (h >= '0' && h <= '9') {
                value += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                value += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                value += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            c.pos += 4;
            *out += static_cast<char>(value & 0xff);
          } else {
            return false;
          }
          break;
        default:
          *out += esc;
      }
    } else {
      *out += ch;
    }
  }
  return false;  // unterminated
}

bool ParseInt(Cursor& c, int64_t* out) {
  c.SkipWs();
  const bool neg = c.pos < c.text.size() && c.text[c.pos] == '-';
  if (neg) {
    ++c.pos;
  }
  uint64_t value = 0;
  bool any = false;
  while (c.pos < c.text.size() && c.text[c.pos] >= '0' && c.text[c.pos] <= '9') {
    value = value * 10 + static_cast<uint64_t>(c.text[c.pos] - '0');
    ++c.pos;
    any = true;
  }
  if (!any) {
    return false;
  }
  *out = neg ? -static_cast<int64_t>(value) : static_cast<int64_t>(value);
  return true;
}

bool ParseUint(Cursor& c, uint64_t* out) {
  c.SkipWs();
  uint64_t value = 0;
  bool any = false;
  while (c.pos < c.text.size() && c.text[c.pos] >= '0' && c.text[c.pos] <= '9') {
    value = value * 10 + static_cast<uint64_t>(c.text[c.pos] - '0');
    ++c.pos;
    any = true;
  }
  *out = value;
  return any;
}

bool ParseUintArray(Cursor& c, std::vector<uint64_t>* out) {
  if (!c.Consume('[')) {
    return false;
  }
  out->clear();
  if (c.Consume(']')) {
    return true;
  }
  do {
    uint64_t v = 0;
    if (!ParseUint(c, &v)) {
      return false;
    }
    out->push_back(v);
  } while (c.Consume(','));
  return c.Consume(']');
}

// Parses {"name": uint, ...}.
bool ParseUintMap(Cursor& c, std::map<std::string, uint64_t>* out) {
  if (!c.Consume('{')) {
    return false;
  }
  if (c.Consume('}')) {
    return true;
  }
  do {
    std::string key;
    uint64_t value = 0;
    if (!ParseStringToken(c, &key) || !c.Consume(':') || !ParseUint(c, &value)) {
      return false;
    }
    (*out)[std::move(key)] = value;
  } while (c.Consume(','));
  return c.Consume('}');
}

bool ParseIntMap(Cursor& c, std::map<std::string, int64_t>* out) {
  if (!c.Consume('{')) {
    return false;
  }
  if (c.Consume('}')) {
    return true;
  }
  do {
    std::string key;
    int64_t value = 0;
    if (!ParseStringToken(c, &key) || !c.Consume(':') || !ParseInt(c, &value)) {
      return false;
    }
    (*out)[std::move(key)] = value;
  } while (c.Consume(','));
  return c.Consume('}');
}

bool ParseHistogramObject(Cursor& c, HistogramSnapshot* out) {
  if (!c.Consume('{')) {
    return false;
  }
  if (c.Consume('}')) {
    return true;
  }
  do {
    std::string key;
    if (!ParseStringToken(c, &key) || !c.Consume(':')) {
      return false;
    }
    if (key == "bounds") {
      if (!ParseUintArray(c, &out->bounds)) {
        return false;
      }
    } else if (key == "counts") {
      if (!ParseUintArray(c, &out->counts)) {
        return false;
      }
    } else if (key == "count") {
      if (!ParseUint(c, &out->count)) {
        return false;
      }
    } else if (key == "sum") {
      if (!ParseUint(c, &out->sum)) {
        return false;
      }
    } else {
      return false;
    }
  } while (c.Consume(','));
  return c.Consume('}');
}

bool ParseHistogramMap(Cursor& c, std::map<std::string, HistogramSnapshot>* out) {
  if (!c.Consume('{')) {
    return false;
  }
  if (c.Consume('}')) {
    return true;
  }
  do {
    std::string key;
    HistogramSnapshot h;
    if (!ParseStringToken(c, &key) || !c.Consume(':') || !ParseHistogramObject(c, &h)) {
      return false;
    }
    (*out)[std::move(key)] = std::move(h);
  } while (c.Consume(','));
  return c.Consume('}');
}

bool ParseSpanArray(Cursor& c, std::vector<SpanRecord>* out) {
  if (!c.Consume('[')) {
    return false;
  }
  if (c.Consume(']')) {
    return true;
  }
  do {
    if (!c.Consume('{')) {
      return false;
    }
    SpanRecord span;
    if (!c.Peek('}')) {
      do {
        std::string key;
        if (!ParseStringToken(c, &key) || !c.Consume(':')) {
          return false;
        }
        if (key == "name") {
          if (!ParseStringToken(c, &span.name)) {
            return false;
          }
        } else if (key == "detail") {
          if (!ParseStringToken(c, &span.detail)) {
            return false;
          }
        } else if (key == "ctxt_hash") {
          if (!ParseUint(c, &span.ctxt_hash)) {
            return false;
          }
        } else if (key == "start_ns") {
          if (!ParseInt(c, &span.start_ns)) {
            return false;
          }
        } else if (key == "duration_ns") {
          if (!ParseInt(c, &span.duration_ns)) {
            return false;
          }
        } else {
          return false;
        }
      } while (c.Consume(','));
    }
    if (!c.Consume('}')) {
      return false;
    }
    out->push_back(std::move(span));
  } while (c.Consume(','));
  return c.Consume(']');
}

std::string FormatNs(double ns) {
  char buf[32];
  if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  }
  return buf;
}

// Linear-interpolated quantile over the explicit buckets.
double Quantile(const HistogramSnapshot& h, double q) {
  if (h.count == 0) {
    return 0;
  }
  const double target = q * static_cast<double>(h.count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < h.counts.size(); ++i) {
    cumulative += h.counts[i];
    if (static_cast<double>(cumulative) >= target) {
      // Upper bound of this bucket (last finite bound for overflow).
      const size_t idx = i < h.bounds.size() ? i : h.bounds.size() - 1;
      return h.bounds.empty() ? 0 : static_cast<double>(h.bounds[idx]);
    }
  }
  return h.bounds.empty() ? 0 : static_cast<double>(h.bounds.back());
}

}  // namespace

std::string ToJson(const MetricsSnapshot& snapshot, const std::vector<SpanRecord>& spans) {
  std::string out;
  out += "{\n  \"schema\": \"whodunit-metrics\",\n  \"version\": 1,\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendEscaped(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendEscaped(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendEscaped(out, name);
    out += ": {\"bounds\": ";
    AppendArray(out, h.bounds);
    out += ", \"counts\": ";
    AppendArray(out, h.counts);
    out += ", \"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + std::to_string(h.sum) + "}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"spans\": [";
  first = true;
  for (const SpanRecord& span : spans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": ";
    AppendEscaped(out, span.name);
    out += ", \"detail\": ";
    AppendEscaped(out, span.detail);
    out += ", \"ctxt_hash\": " + std::to_string(span.ctxt_hash);
    out += ", \"start_ns\": " + std::to_string(span.start_ns);
    out += ", \"duration_ns\": " + std::to_string(span.duration_ns) + "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool ParseJson(std::string_view json, MetricsSnapshot* out, std::vector<SpanRecord>* spans) {
  Cursor c{json};
  if (!c.Consume('{')) {
    return false;
  }
  bool version_ok = false;
  if (!c.Peek('}')) {
    do {
      std::string key;
      if (!ParseStringToken(c, &key) || !c.Consume(':')) {
        return false;
      }
      if (key == "schema") {
        std::string schema;
        if (!ParseStringToken(c, &schema) || schema != "whodunit-metrics") {
          return false;
        }
      } else if (key == "version") {
        uint64_t version = 0;
        if (!ParseUint(c, &version) || version != 1) {
          return false;
        }
        version_ok = true;
      } else if (key == "counters") {
        if (!ParseUintMap(c, &out->counters)) {
          return false;
        }
      } else if (key == "gauges") {
        if (!ParseIntMap(c, &out->gauges)) {
          return false;
        }
      } else if (key == "histograms") {
        if (!ParseHistogramMap(c, &out->histograms)) {
          return false;
        }
      } else if (key == "spans") {
        std::vector<SpanRecord> decoded;
        if (!ParseSpanArray(c, &decoded)) {
          return false;
        }
        if (spans != nullptr) {
          *spans = std::move(decoded);
        }
      } else {
        return false;
      }
    } while (c.Consume(','));
  }
  return c.Consume('}') && version_ok;
}

std::string RenderText(const MetricsSnapshot& snapshot, const std::vector<SpanRecord>* spans) {
  std::ostringstream out;
  out << "--- counters ---\n";
  for (const auto& [name, value] : snapshot.counters) {
    out << "  " << name << " = " << value << "\n";
  }
  out << "--- gauges ---\n";
  for (const auto& [name, value] : snapshot.gauges) {
    out << "  " << name << " = " << value << "\n";
  }
  out << "--- histograms ---\n";
  for (const auto& [name, h] : snapshot.histograms) {
    const double mean = h.count > 0 ? static_cast<double>(h.sum) / static_cast<double>(h.count)
                                    : 0.0;
    // Only *_ns histograms carry time units; depth histograms are counts.
    const bool is_ns = name.size() >= 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
    auto fmt = [is_ns](double v) {
      if (is_ns) {
        return FormatNs(v);
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", v);
      return std::string(buf);
    };
    out << "  " << name << ": count=" << h.count << " mean=" << fmt(mean)
        << " p50=" << fmt(Quantile(h, 0.5)) << " p99=" << fmt(Quantile(h, 0.99)) << "\n";
  }
  if (spans != nullptr && !spans->empty()) {
    out << "--- spans (" << spans->size() << " buffered, newest last) ---\n";
    const size_t show = spans->size() > 10 ? 10 : spans->size();
    for (size_t i = spans->size() - show; i < spans->size(); ++i) {
      const SpanRecord& span = (*spans)[i];
      out << "  t+" << span.start_ns << "ns " << span.name << " '" << span.detail << "' ctxt="
          << span.ctxt_hash << " dur=" << FormatNs(static_cast<double>(span.duration_ns))
          << "\n";
    }
  }
  return out.str();
}

bool DumpGlobalMetrics(const std::string& path) {
  MetricsSnapshot snapshot = Registry().Snapshot();
  snapshot.counters["obs.spans_recorded"] = Tracer().recorded();
  snapshot.counters["obs.spans_dropped"] = Tracer().dropped();
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << ToJson(snapshot, Tracer().Snapshot());
  return static_cast<bool>(out);
}

}  // namespace whodunit::obs
