// Self-observability: metrics for the profiler's own machinery.
//
// Whodunit quantifies its overhead budgets from the outside (Tables
// 2-3, §9); this layer lets the reproduction watch itself from the
// inside: how many samples the sampler fired, how often the §3
// dictionary propagated a context, how many synopses were recognized
// as responses. Every subsystem registers named instruments here and
// a snapshot (merged across threads) is exported as JSON at bench
// exit — see docs/METRICS.md for the full catalog and schema.
//
// Design: instruments are lock-cheap. A Counter/Histogram holds a
// small fixed array of cache-line-padded atomic shards; a thread
// picks its shard once (thread-local index) and updates it with a
// relaxed fetch_add — no mutex, no contention between simulator
// threads or test writer threads. The registry mutex is touched only
// at instrument creation and at snapshot time. Instrumented classes
// cache `Counter*` handles at construction so hot paths never pay a
// name lookup.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace whodunit::obs {

// Number of independent shards per instrument. Threads hash onto a
// shard; 16 is plenty for the simulator (single-threaded) and for the
// concurrency the tests exercise.
inline constexpr size_t kShards = 16;

namespace internal {
struct alignas(64) PaddedAtomic {
  std::atomic<uint64_t> v{0};
};
// Round-robin shard assignment state (defined in metrics.cc).
extern std::atomic<size_t> g_next_shard;
}  // namespace internal

// Index of the calling thread's shard, assigned round-robin on first
// use per thread. Inline: Counter::Add sits on per-instruction paths
// (the flow detector's hooks), where an out-of-line call per event is
// measurable.
inline size_t ThisThreadShard() {
  thread_local const size_t shard =
      internal::g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

// Monotonic event count.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[ThisThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const;
  void Reset();

 private:
  std::array<internal::PaddedAtomic, kShards> shards_;
};

// Last-writer-wins instantaneous value (dictionary sizes, depths).
// Gauges are updated rarely, so a single atomic suffices.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the
// finite buckets; one implicit overflow bucket catches the rest.
// Observations, the running count, and the running sum are sharded
// like Counter.
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> bounds);

  void Observe(uint64_t value);

  const std::vector<uint64_t>& bounds() const { return bounds_; }
  // Per-bucket counts (bounds().size() + 1 entries, overflow last).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const;
  uint64_t Sum() const;
  void Reset();

  // Adds raw bucket counts (bounds().size() + 1 entries, overflow
  // last) plus a running count/sum — the fold path for merging a
  // shard registry's snapshot. Mismatched sizes keep count/sum only.
  void MergeCounts(const std::vector<uint64_t>& bucket_counts, uint64_t count, uint64_t sum);

 private:
  struct Shard {
    std::vector<internal::PaddedAtomic> buckets;
    internal::PaddedAtomic count;
    internal::PaddedAtomic sum;
  };
  std::vector<uint64_t> bounds_;
  std::array<Shard, kShards> shards_;
};

// Virtual-time latency buckets: 1us..1s, roughly 1-2-5 per decade.
const std::vector<uint64_t>& DefaultLatencyBoundsNs();
// Small-cardinality buckets (queue depths, stack depths): powers of 2.
const std::vector<uint64_t>& DefaultDepthBounds();

struct HistogramSnapshot {
  std::vector<uint64_t> bounds;
  std::vector<uint64_t> counts;  // bounds.size() + 1, overflow last
  uint64_t count = 0;
  uint64_t sum = 0;
};

// Point-in-time merged view of every instrument in a registry.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Instruments live as long as the registry; returned references are
  // stable, so callers cache them at construction time.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  // `bounds` is used only on first creation of `name`.
  Histogram& GetHistogram(std::string_view name, const std::vector<uint64_t>& bounds);

  MetricsSnapshot Snapshot() const;
  // Zeroes every instrument (between bench configurations, in tests).
  void Reset();

  // Deterministic fold of another registry's snapshot into this one:
  // counters and histogram buckets add, gauges add (a shard-parallel
  // run reports the sum over shards — docs/METRICS.md). Histograms
  // whose bucket bounds differ from an existing instrument keep only
  // their count/sum. Folding shard snapshots in canonical shard order
  // yields byte-identical exports regardless of thread interleaving.
  void MergeFrom(const MetricsSnapshot& other);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// The registry every built-in instrumentation point uses: normally the
// process-wide one, but a shard isolate (sim::ShardEnv::Scope) can
// install a private registry for the calling thread so concurrent
// simulations never share mutable instruments.
MetricsRegistry& Registry();
// The process-wide default registry, regardless of any installed scope.
MetricsRegistry& GlobalRegistry();

// Installs `registry` as the calling thread's Registry() for the
// lifetime of the scope; restores the previous target on destruction.
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry& registry);
  ~ScopedMetricsRegistry();
  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

 private:
  MetricsRegistry* prev_;
};

}  // namespace whodunit::obs

#endif  // SRC_OBS_METRICS_H_
