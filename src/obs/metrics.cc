#include "src/obs/metrics.h"

#include <algorithm>

namespace whodunit::obs {

namespace internal {
std::atomic<size_t> g_next_shard{0};
}  // namespace internal

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& s : shards_) {
    s.v.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(std::vector<uint64_t> bounds) : bounds_(std::move(bounds)) {
  for (auto& shard : shards_) {
    shard.buckets = std::vector<internal::PaddedAtomic>(bounds_.size() + 1);
  }
}

void Histogram::Observe(uint64_t value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  Shard& shard = shards_[ThisThreadShard()];
  shard.buckets[bucket].v.fetch_add(1, std::memory_order_relaxed);
  shard.count.v.fetch_add(1, std::memory_order_relaxed);
  shard.sum.v.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] += shard.buckets[i].v.load(std::memory_order_relaxed);
    }
  }
  return out;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.count.v.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Sum() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.sum.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::MergeCounts(const std::vector<uint64_t>& bucket_counts, uint64_t count,
                            uint64_t sum) {
  Shard& shard = shards_[0];
  if (bucket_counts.size() == bounds_.size() + 1) {
    for (size_t i = 0; i < bucket_counts.size(); ++i) {
      shard.buckets[i].v.fetch_add(bucket_counts[i], std::memory_order_relaxed);
    }
  }
  shard.count.v.fetch_add(count, std::memory_order_relaxed);
  shard.sum.v.fetch_add(sum, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& shard : shards_) {
    for (auto& b : shard.buckets) {
      b.v.store(0, std::memory_order_relaxed);
    }
    shard.count.v.store(0, std::memory_order_relaxed);
    shard.sum.v.store(0, std::memory_order_relaxed);
  }
}

const std::vector<uint64_t>& DefaultLatencyBoundsNs() {
  static const std::vector<uint64_t> kBounds = {
      1'000,       2'000,       5'000,       10'000,      20'000,        50'000,
      100'000,     200'000,     500'000,     1'000'000,   2'000'000,     5'000'000,
      10'000'000,  20'000'000,  50'000'000,  100'000'000, 200'000'000,   500'000'000,
      1'000'000'000};
  return kBounds;
}

const std::vector<uint64_t>& DefaultDepthBounds() {
  static const std::vector<uint64_t> kBounds = {0, 1, 2, 4, 8, 16, 32, 64, 128, 256};
  return kBounds;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         const std::vector<uint64_t>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(bounds)).first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.bounds = hist->bounds();
    h.counts = hist->BucketCounts();
    h.count = hist->Count();
    h.sum = hist->Sum();
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, hist] : histograms_) {
    hist->Reset();
  }
}

void MetricsRegistry::MergeFrom(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    GetCounter(name).Add(value);
  }
  for (const auto& [name, value] : other.gauges) {
    GetGauge(name).Add(value);
  }
  for (const auto& [name, hist] : other.histograms) {
    GetHistogram(name, hist.bounds).MergeCounts(hist.counts, hist.count, hist.sum);
  }
}

namespace {

// The calling thread's Registry() target; null means the process-wide
// default. A raw thread-local pointer (not a reference into a
// function-local static) so shard threads can be redirected and
// restored without any synchronization.
thread_local MetricsRegistry* current_registry = nullptr;

}  // namespace

MetricsRegistry& GlobalRegistry() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry& Registry() {
  MetricsRegistry* reg = current_registry;
  return reg != nullptr ? *reg : GlobalRegistry();
}

ScopedMetricsRegistry::ScopedMetricsRegistry(MetricsRegistry& registry)
    : prev_(current_registry) {
  current_registry = &registry;
}

ScopedMetricsRegistry::~ScopedMetricsRegistry() { current_registry = prev_; }

}  // namespace whodunit::obs
