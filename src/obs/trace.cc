#include "src/obs/trace.h"

#include <utility>

namespace whodunit::obs {

TraceLog::TraceLog(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_ < 1024 ? capacity_ : 1024);
}

void TraceLog::Record(SpanRecord span) {
  if (!enabled_) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[next_] = std::move(span);
  next_ = (next_ + 1) % capacity_;
}

std::vector<SpanRecord> TraceLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // Oldest first: when the ring has wrapped, next_ points at the
  // oldest surviving span.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t TraceLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t TraceLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

void TraceLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

namespace {

thread_local TraceLog* current_tracer = nullptr;

}  // namespace

TraceLog& GlobalTracer() {
  static TraceLog* log = new TraceLog();
  return *log;
}

TraceLog& Tracer() {
  TraceLog* log = current_tracer;
  return log != nullptr ? *log : GlobalTracer();
}

ScopedTraceLog::ScopedTraceLog(TraceLog& log) : prev_(current_tracer) { current_tracer = &log; }

ScopedTraceLog::~ScopedTraceLog() { current_tracer = prev_; }

}  // namespace whodunit::obs
