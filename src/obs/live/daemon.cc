#include "src/obs/live/daemon.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "src/obs/live/attribution.h"
#include "src/obs/live/span_export.h"

namespace whodunit::obs::live {
namespace {

std::string Fixed(double v, int decimals = 1) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

void JsonEscapeInto(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\';
    }
    out << (c == '\n' ? ' ' : c);
  }
}

}  // namespace

Whodunitd::Whodunitd(sim::Scheduler& sched, LiveOptions options)
    : sched_(sched),
      options_(options),
      ch_(sched),
      history_(HistoryOptions{options.history_bytes, options.history_flush_interval_ns}),
      obs_begun_(&Registry().GetCounter("live.txns_begun")),
      obs_dropped_(&Registry().GetCounter("live.txns_dropped")),
      obs_abandoned_(&Registry().GetCounter("live.txns_abandoned")),
      obs_published_(&Registry().GetCounter("live.txns_published")),
      obs_inflight_(&Registry().GetGauge("live.inflight_txns")),
      obs_sampling_total_(&Registry().GetCounter("sampling.txns_total")),
      obs_sampling_sampled_(&Registry().GetCounter("sampling.txns_sampled")) {
  sim::Spawn(sched_, Pump());
}

Whodunitd::~Whodunitd() { Shutdown(); }

sim::Process Whodunitd::Pump() {
  for (;;) {
    auto event = co_await ch_.Receive();
    if (!event) {
      break;
    }
    if (options_.attribution) {
      event->attr = AttributeTxn(*event, attr_scratch_);
    }
    agg_.Ingest(*event);
    history_.Ingest(*event, sched_.now());
    recent_.push_back(std::move(*event));
    if (recent_.size() > options_.span_ring) {
      recent_.pop_front();
    }
  }
  // The channel only closes at Shutdown, whose own flush ran before
  // this drain delivered its last batch: settle the stragglers so the
  // final snapshot (and the why-tail report) sees every ingested event.
  history_.Flush(sched_.now());
}

uint64_t Whodunitd::BeginTxn(std::string_view origin_stage, int64_t now) {
  if (shutdown_ || builders_.size() >= options_.max_inflight) {
    obs_dropped_->Add();
    return 0;
  }
  obs_begun_->Add();
  const uint64_t txn = next_txn_++;
  Builder builder;
  builder.event.txn_id = txn;
  builder.event.origin_stage = std::string(origin_stage);
  builder.event.start_ns = now;
  builder.event.spans.push_back(
      StageSpan{std::string(origin_stage), now, 0, /*parent=*/-1, /*link=*/0});
  builder.open.push_back({0, 0});
  builders_.Upsert(txn, std::move(builder));
  obs_inflight_->Set(static_cast<int64_t>(builders_.size()));
  return txn;
}

void Whodunitd::SetTxnType(uint64_t txn, std::string_view type) {
  if (auto* b = builders_.Find(txn)) {
    b->event.type = std::string(type);
  }
}

void Whodunitd::SetTxnCtxt(uint64_t txn, context::NodeId ctxt) {
  if (auto* b = builders_.Find(txn)) {
    b->event.root_ctxt = ctxt;
  }
}

void Whodunitd::JoinSpan(uint64_t txn, std::string_view stage, uint32_t link, int64_t now,
                         int64_t queue_ns, context::NodeId ctxt) {
  auto* found = builders_.Find(txn);
  if (found == nullptr) {
    return;
  }
  Builder& b = *found;
  // Parent = the open span that most recently sent this link; fall
  // back to the innermost open span (its request is still pending).
  int32_t parent = -1;
  for (auto it = b.open.rbegin(); it != b.open.rend(); ++it) {
    if (link != 0 && it->second == link) {
      parent = it->first;
      break;
    }
    if (parent < 0) {
      parent = it->first;
    }
  }
  const auto index = static_cast<int32_t>(b.event.spans.size());
  b.event.spans.push_back(
      StageSpan{std::string(stage), now, 0, parent, link, queue_ns, 0, 0, ctxt});
  b.open.push_back({index, 0});
}

void Whodunitd::AddSpanWait(uint64_t txn, std::string_view stage, WaitState state,
                            int64_t ns) {
  if (ns <= 0) {
    return;
  }
  auto* found = builders_.Find(txn);
  if (found == nullptr) {
    return;
  }
  Builder& b = *found;
  for (auto it = b.open.rbegin(); it != b.open.rend(); ++it) {
    StageSpan& span = b.event.spans[static_cast<size_t>(it->first)];
    if (span.stage == stage) {
      switch (state) {
        case WaitState::kQueueWait:
          span.queue_ns += ns;
          break;
        case WaitState::kService:
          span.service_ns += ns;
          break;
        case WaitState::kLockWait:
          span.lock_ns += ns;
          break;
        default:
          break;
      }
      return;
    }
  }
}

void Whodunitd::NoteSend(uint64_t txn, std::string_view stage, uint32_t link) {
  auto* found = builders_.Find(txn);
  if (found == nullptr) {
    return;
  }
  Builder& b = *found;
  for (auto it = b.open.rbegin(); it != b.open.rend(); ++it) {
    if (b.event.spans[static_cast<size_t>(it->first)].stage == stage) {
      it->second = link;
      return;
    }
  }
}

void Whodunitd::EndSpan(uint64_t txn, std::string_view stage, int64_t now) {
  auto* found = builders_.Find(txn);
  if (found == nullptr) {
    return;
  }
  Builder& b = *found;
  for (auto it = b.open.rbegin(); it != b.open.rend(); ++it) {
    StageSpan& span = b.event.spans[static_cast<size_t>(it->first)];
    if (span.stage == stage) {
      span.duration_ns = now - span.start_ns;
      b.open.erase(std::next(it).base());
      return;
    }
  }
}

void Whodunitd::ErrorTxn(uint64_t txn) {
  if (auto* b = builders_.Find(txn)) {
    b->event.error = true;
  }
}

void Whodunitd::CompleteTxn(uint64_t txn, int64_t now) {
  auto* found = builders_.Find(txn);
  if (found == nullptr) {
    return;
  }
  Builder& b = *found;
  for (const auto& [index, link] : b.open) {
    StageSpan& span = b.event.spans[static_cast<size_t>(index)];
    span.duration_ns = now - span.start_ns;
  }
  b.open.clear();
  b.event.end_ns = now;
  obs_published_->Add();
  ch_.Send(std::move(b.event));
  builders_.Erase(txn);
  obs_inflight_->Set(static_cast<int64_t>(builders_.size()));
}

Whodunitd::TopSnapshot Whodunitd::Top(size_t max_types, size_t max_contexts) const {
  if (flush_hook_) {
    flush_hook_();
  }
  TopSnapshot snap;
  snap.as_of_ns = sched_.now();
  snap.txns = agg_.txns();
  snap.errors = agg_.errors();
  snap.inflight = builders_.size();
  snap.sampling_total = obs_sampling_total_->Value();
  snap.sampling_sampled = obs_sampling_sampled_->Value();
  snap.history_txns = history_.retained_txns();
  snap.history_bytes = history_.retained_bytes();
  snap.history_evicted = history_.evicted_txns();
  snap.types = agg_.TypeRows();
  if (snap.types.size() > max_types) {
    snap.types.resize(max_types);
  }
  snap.stages = agg_.StageRows();
  snap.crosstalk = agg_.CrosstalkRows();
  snap.contexts = agg_.TopContexts(max_contexts);
  return snap;
}

std::string Whodunitd::RenderTop(const TopSnapshot& snap) const {
  std::ostringstream out;
  out << "whodunitd — live transactional profile @ " << Fixed(snap.as_of_ns / 1e9) << "s"
      << "   (" << snap.txns << " txns, " << snap.errors << " errors, " << snap.inflight
      << " in flight)\n";
  if (snap.sampling_total > 0) {
    const double pct =
        100.0 * static_cast<double>(snap.sampling_sampled) / static_cast<double>(snap.sampling_total);
    out << "  sampling: " << snap.sampling_sampled << "/" << snap.sampling_total
        << " txns sampled (" << Fixed(pct, 2) << "%)   history: " << snap.history_txns
        << " txns / " << snap.history_bytes << " B retained, " << snap.history_evicted
        << " evicted\n";
  }
  out << "\n";
  char line[256];
  std::snprintf(line, sizeof line, "  %-26s %8s %5s %10s %10s %10s %10s %10s\n", "TYPE",
                "COUNT", "ERR", "MEAN(ms)", "P50(ms)", "P95(ms)", "P99(ms)", "P99.9(ms)");
  out << line;
  for (const auto& row : snap.types) {
    std::snprintf(line, sizeof line,
                  "  %-26s %8llu %5llu %10.2f %10.2f %10.2f %10.2f %10.2f\n",
                  row.type.c_str(), static_cast<unsigned long long>(row.count),
                  static_cast<unsigned long long>(row.errors), row.mean_ms, row.p50_ms,
                  row.p95_ms, row.p99_ms, row.p999_ms);
    out << line;
  }
  out << "\n";
  std::snprintf(line, sizeof line, "  %-26s %10s %14s\n", "STAGE", "SPANS", "BUSY(ms)");
  out << line;
  for (const auto& row : snap.stages) {
    std::snprintf(line, sizeof line, "  %-26s %10llu %14.1f\n", row.stage.c_str(),
                  static_cast<unsigned long long>(row.spans), row.busy_ms);
    out << line;
  }
  out << "\n  CROSSTALK (waiter <- holder)" << (snap.crosstalk.empty() ? ": none\n" : "\n");
  for (const auto& row : snap.crosstalk) {
    std::snprintf(line, sizeof line, "  %-20s <- %-20s %8llu waits %10.2f ms mean\n",
                  row.waiter.c_str(), row.holder.c_str(),
                  static_cast<unsigned long long>(row.count), row.mean_wait_ms);
    out << line;
  }
  if (!snap.contexts.empty()) {
    out << "\n  TOP CONTEXTS BY CPU\n";
    for (const auto& row : snap.contexts) {
      const std::string name =
          ctxt_namer_ ? ctxt_namer_(row.ctxt) : "ctxt_" + std::to_string(row.ctxt);
      std::snprintf(line, sizeof line, "  %12.2f ms  %s\n",
                    static_cast<double>(row.cost_ns) / 1e6, name.c_str());
      out << line;
    }
  }
  return out.str();
}

std::string Whodunitd::QueryJson(size_t max_types, size_t max_contexts) const {
  const TopSnapshot snap = Top(max_types, max_contexts);
  std::ostringstream out;
  out << "{\"schema\":\"whodunit-live-v1\",\"as_of_ns\":" << snap.as_of_ns
      << ",\"txns\":" << snap.txns << ",\"errors\":" << snap.errors
      << ",\"inflight\":" << snap.inflight
      << ",\"sampling\":{\"txns_total\":" << snap.sampling_total
      << ",\"txns_sampled\":" << snap.sampling_sampled
      << "},\"history\":{\"retained_txns\":" << snap.history_txns
      << ",\"retained_bytes\":" << snap.history_bytes
      << ",\"evicted_txns\":" << snap.history_evicted << "},\"types\":[";
  for (size_t i = 0; i < snap.types.size(); ++i) {
    const auto& row = snap.types[i];
    out << (i ? "," : "") << "\n{\"type\":\"";
    JsonEscapeInto(out, row.type);
    out << "\",\"count\":" << row.count << ",\"errors\":" << row.errors
        << ",\"mean_ms\":" << Fixed(row.mean_ms, 3) << ",\"p50_ms\":" << Fixed(row.p50_ms, 3)
        << ",\"p95_ms\":" << Fixed(row.p95_ms, 3) << ",\"p99_ms\":" << Fixed(row.p99_ms, 3)
        << ",\"p999_ms\":" << Fixed(row.p999_ms, 3) << "}";
  }
  out << "],\"stages\":[";
  for (size_t i = 0; i < snap.stages.size(); ++i) {
    const auto& row = snap.stages[i];
    out << (i ? "," : "") << "\n{\"stage\":\"";
    JsonEscapeInto(out, row.stage);
    out << "\",\"spans\":" << row.spans << ",\"busy_ms\":" << Fixed(row.busy_ms, 3) << "}";
  }
  out << "],\"crosstalk\":[";
  for (size_t i = 0; i < snap.crosstalk.size(); ++i) {
    const auto& row = snap.crosstalk[i];
    out << (i ? "," : "") << "\n{\"waiter\":\"";
    JsonEscapeInto(out, row.waiter);
    out << "\",\"holder\":\"";
    JsonEscapeInto(out, row.holder);
    out << "\",\"count\":" << row.count << ",\"mean_wait_ms\":" << Fixed(row.mean_wait_ms, 3)
        << "}";
  }
  out << "],\"contexts\":[";
  for (size_t i = 0; i < snap.contexts.size(); ++i) {
    const auto& row = snap.contexts[i];
    out << (i ? "," : "") << "\n{\"ctxt\":" << row.ctxt << ",\"cost_ns\":" << row.cost_ns
        << ",\"name\":\"";
    JsonEscapeInto(out, ctxt_namer_ ? ctxt_namer_(row.ctxt) : "ctxt_" + std::to_string(row.ctxt));
    out << "\"}";
  }
  out << "],\"attr\":{\"schema\":\"whodunit-attr-v1\",\"rows\":[";
  const auto attr_rows = agg_.AttrRows();
  for (size_t i = 0; i < attr_rows.size(); ++i) {
    const auto& row = attr_rows[i];
    out << (i ? "," : "") << "\n{\"type\":\"";
    JsonEscapeInto(out, row.type);
    out << "\",\"stage\":\"";
    JsonEscapeInto(out, row.stage);
    out << "\",\"ctxt\":" << row.ctxt << ",\"state\":\"" << WaitStateName(row.state)
        << "\",\"ns\":" << row.ns << "}";
  }
  out << "]},\"why_tail\":{\"fast_q\":0.5,\"tail_q\":0.99,\"types\":[";
  const auto tail_types = WhyTail();
  for (size_t i = 0; i < tail_types.size(); ++i) {
    const auto& type = tail_types[i];
    out << (i ? "," : "") << "\n{\"type\":\"";
    JsonEscapeInto(out, type.type);
    out << "\",\"fast_txns\":" << type.fast_txns << ",\"tail_txns\":" << type.tail_txns
        << ",\"fast_ms\":" << Fixed(type.fast_ms, 3)
        << ",\"tail_ms\":" << Fixed(type.tail_ms, 3) << ",\"deltas\":[";
    for (size_t j = 0; j < type.deltas.size(); ++j) {
      const auto& delta = type.deltas[j];
      out << (j ? "," : "") << "{\"stage\":\"";
      JsonEscapeInto(out, delta.stage);
      out << "\",\"state\":\"" << WaitStateName(delta.state)
          << "\",\"fast_ms\":" << Fixed(delta.fast_ms, 3)
          << ",\"tail_ms\":" << Fixed(delta.tail_ms, 3)
          << ",\"delta_ms\":" << Fixed(delta.delta_ms, 3) << "}";
    }
    out << "]}";
  }
  out << "]}}\n";
  return out.str();
}

std::vector<Whodunitd::WhyTailType> Whodunitd::WhyTail(double fast_q,
                                                       double tail_q) const {
  // Group the retained history by transaction type, split each type's
  // population at its own p50/p99 latency (nearest-rank over the
  // retained sample), and compare the mean per-(stage, state)
  // critical-path cost of the two groups.
  std::map<std::string, std::vector<const TxnEvent*>, std::less<>> by_type;
  for (const TxnEvent* event : history_.Scan()) {
    if (event->attr.empty()) {
      continue;
    }
    by_type[event->type.empty() ? std::string("(untyped)") : event->type].push_back(event);
  }
  std::vector<WhyTailType> out;
  for (const auto& [type, events] : by_type) {
    std::vector<int64_t> latencies;
    latencies.reserve(events.size());
    for (const TxnEvent* event : events) {
      latencies.push_back(event->end_ns - event->start_ns);
    }
    std::sort(latencies.begin(), latencies.end());
    const auto rank = [&](double q) {
      const size_t n = latencies.size();
      size_t idx = static_cast<size_t>(q * static_cast<double>(n));
      return latencies[std::min(idx, n - 1)];
    };
    const int64_t fast_cut = rank(fast_q);
    const int64_t tail_cut = rank(tail_q);

    WhyTailType row;
    row.type = type;
    // Mean per-(stage, state) attribution of each group; every bucket
    // is normalized by the group's txn count, so a state absent from
    // one group still yields a delta.
    std::map<std::pair<std::string, uint8_t>, std::pair<int64_t, int64_t>> buckets;
    int64_t fast_total = 0;
    int64_t tail_total = 0;
    for (const TxnEvent* event : events) {
      const int64_t latency = event->end_ns - event->start_ns;
      const bool fast = latency <= fast_cut;
      const bool tail = latency >= tail_cut;
      if (!fast && !tail) {
        continue;
      }
      if (fast) {
        ++row.fast_txns;
        fast_total += latency;
      }
      if (tail) {
        ++row.tail_txns;
        tail_total += latency;
      }
      for (const AttrSlice& slice : event->attr) {
        auto& bucket = buckets[{slice.stage, static_cast<uint8_t>(slice.state)}];
        if (fast) {
          bucket.first += slice.ns;
        }
        if (tail) {
          bucket.second += slice.ns;
        }
      }
    }
    if (row.fast_txns == 0 || row.tail_txns == 0) {
      continue;
    }
    row.fast_ms = static_cast<double>(fast_total) / static_cast<double>(row.fast_txns) / 1e6;
    row.tail_ms = static_cast<double>(tail_total) / static_cast<double>(row.tail_txns) / 1e6;
    for (const auto& [key, sums] : buckets) {
      WhyTailDelta delta;
      delta.stage = key.first;
      delta.state = static_cast<WaitState>(key.second);
      delta.fast_ms =
          static_cast<double>(sums.first) / static_cast<double>(row.fast_txns) / 1e6;
      delta.tail_ms =
          static_cast<double>(sums.second) / static_cast<double>(row.tail_txns) / 1e6;
      delta.delta_ms = delta.tail_ms - delta.fast_ms;
      row.deltas.push_back(std::move(delta));
    }
    std::stable_sort(row.deltas.begin(), row.deltas.end(),
                     [](const WhyTailDelta& a, const WhyTailDelta& b) {
                       return a.delta_ms > b.delta_ms;
                     });
    out.push_back(std::move(row));
  }
  // Heaviest tails first; name tiebreak keeps the report deterministic.
  std::stable_sort(out.begin(), out.end(), [](const WhyTailType& a, const WhyTailType& b) {
    const double ga = a.tail_ms - a.fast_ms;
    const double gb = b.tail_ms - b.fast_ms;
    if (ga != gb) {
      return ga > gb;
    }
    return a.type < b.type;
  });
  return out;
}

std::string Whodunitd::RenderWhyTail() const {
  const auto types = WhyTail();
  std::ostringstream out;
  out << "whodunitd — why-tail: p99 vs p50 critical-path attribution ("
      << history_.retained_txns() << " txns retained)\n";
  if (types.empty()) {
    out << "  (no attributed history: enable --history-bytes and attribution)\n";
    return out.str();
  }
  char line[256];
  for (const auto& type : types) {
    out << "\n  " << type.type << ": p50 cohort " << type.fast_txns << " txns @ "
        << Fixed(type.fast_ms, 2) << " ms, p99 cohort " << type.tail_txns << " txns @ "
        << Fixed(type.tail_ms, 2) << " ms (gap " << Fixed(type.tail_ms - type.fast_ms, 2)
        << " ms)\n";
    std::snprintf(line, sizeof line, "    %-22s %-16s %10s %10s %10s\n", "STAGE", "STATE",
                  "P50(ms)", "P99(ms)", "DELTA(ms)");
    out << line;
    for (const auto& delta : type.deltas) {
      std::snprintf(line, sizeof line, "    %-22s %-16s %10.2f %10.2f %+10.2f\n",
                    delta.stage.c_str(), WaitStateName(delta.state), delta.fast_ms,
                    delta.tail_ms, delta.delta_ms);
      out << line;
    }
  }
  return out.str();
}

std::vector<TxnEvent> Whodunitd::RecentEvents() const {
  return std::vector<TxnEvent>(recent_.begin(), recent_.end());
}

std::string Whodunitd::ExportSpansJson() const { return ExportChromeTrace(RecentEvents()); }

void Whodunitd::Shutdown() {
  if (shutdown_) {
    return;
  }
  shutdown_ = true;
  obs_abandoned_->Add(builders_.size());
  builders_.Clear();
  obs_inflight_->Set(0);
  // Settle the history's pending batch so the final snapshot reflects
  // everything the daemon ingested.
  history_.Flush(sched_.now());
  ch_.Close();
}

}  // namespace whodunit::obs::live
