#include "src/obs/live/daemon.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "src/obs/live/attribution.h"
#include "src/obs/live/span_export.h"

namespace whodunit::obs::live {
namespace {

std::string Fixed(double v, int decimals = 1) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

void JsonEscapeInto(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\';
    }
    out << (c == '\n' ? ' ' : c);
  }
}

}  // namespace

Whodunitd::Whodunitd(sim::Scheduler& sched, LiveOptions options)
    : sched_(sched),
      options_(options),
      ch_(sched),
      history_(HistoryOptions{options.history_bytes, options.history_flush_interval_ns}),
      obs_begun_(&Registry().GetCounter("live.txns_begun")),
      obs_dropped_(&Registry().GetCounter("live.txns_dropped")),
      obs_abandoned_(&Registry().GetCounter("live.txns_abandoned")),
      obs_published_(&Registry().GetCounter("live.txns_published")),
      obs_batches_(&Registry().GetCounter("live.batches_published")),
      obs_inflight_(&Registry().GetGauge("live.inflight_txns")),
      obs_sampling_total_(&Registry().GetCounter("sampling.txns_total")),
      obs_sampling_sampled_(&Registry().GetCounter("sampling.txns_sampled")) {
  if (options_.publish_batch == 0) {
    options_.publish_batch = 1;
  }
  sim::Spawn(sched_, Pump());
}

Whodunitd::~Whodunitd() { Shutdown(); }

sim::Process Whodunitd::Pump() {
  for (;;) {
    auto batch = co_await ch_.Receive();
    if (!batch) {
      break;
    }
    // The batch preserves completion order, so iterating it here is
    // exactly the per-event ingest order an unbatched channel gave.
    for (TxnEvent& event : *batch) {
      if (options_.attribution) {
        // Pre-size to the session high-water so every record's attr
        // block lands in the same arena size class. The history's
        // byte-budgeted eviction makes its retained MIX of records
        // drift slowly; with per-shape block sizes that drift can
        // demand one more block of some class than any earlier
        // moment supplied, forcing a fresh allocation long after
        // warmup. Uniform blocks make pool demand depend only on
        // record COUNT, which is strictly periodic — this is what
        // holds the steady-state allocation count at exactly zero
        // (bench_ablation_live_obs gates it).
        event.attr.reserve(attr_cap_highwater_);
        AttributeTxn(event, *syms_, attr_scratch_, event.attr);
        attr_cap_highwater_ =
            std::max(attr_cap_highwater_, event.attr.capacity());
      }
      agg_.Ingest(event);
      // Ownership split: the recent ring takes the copy, the
      // byte-budgeted history takes the move (it is the last consumer,
      // so retention reuses the event's own blocks and never draws a
      // fresh one). The ring recycles its oldest slot in place —
      // PooledVec copy assignment reuses the slot's existing blocks —
      // so once every slot has seen the largest event shape the ring
      // stops touching the arena entirely.
      if (options_.span_ring > 0) {
        if (recent_.size() < options_.span_ring) {
          recent_.push_back(event);
        } else {
          recent_.rotate_front_to_back();
          recent_.back() = event;
        }
      }
      history_.Ingest(std::move(event), sched_.now());
    }
    // Batch destructs here: its pooled block recycles to the arena.
  }
  // The channel only closes at Shutdown, whose own flush ran before
  // this drain delivered its last batch: settle the stragglers so the
  // final snapshot (and the why-tail report) sees every ingested event.
  history_.Flush(sched_.now());
}

uint64_t Whodunitd::BeginTxn(SymId origin_stage, int64_t now) {
  if (shutdown_ || builders_.size() >= options_.max_inflight) {
    obs_dropped_->Add();
    return 0;
  }
  obs_begun_->Add();
  const uint64_t txn = next_txn_++;
  Builder builder;
  builder.event.txn_id = txn;
  builder.event.origin_stage = origin_stage;
  builder.event.start_ns = now;
  builder.event.spans.push_back(
      StageSpan{origin_stage, now, 0, /*parent=*/-1, /*link=*/0});
  builder.open.push_back({0, 0});
  builders_.Upsert(txn, std::move(builder));
  obs_inflight_->Set(static_cast<int64_t>(builders_.size()));
  return txn;
}

void Whodunitd::SetTxnType(uint64_t txn, SymId type) {
  if (auto* b = builders_.Find(txn)) {
    b->event.type = type;
  }
}

void Whodunitd::SetTxnCtxt(uint64_t txn, context::NodeId ctxt) {
  if (auto* b = builders_.Find(txn)) {
    b->event.root_ctxt = ctxt;
  }
}

void Whodunitd::JoinSpan(uint64_t txn, SymId stage, uint32_t link, int64_t now,
                         int64_t queue_ns, context::NodeId ctxt) {
  auto* found = builders_.Find(txn);
  if (found == nullptr) {
    return;
  }
  Builder& b = *found;
  // Parent = the open span that most recently sent this link; fall
  // back to the innermost open span (its request is still pending).
  int32_t parent = -1;
  for (size_t i = b.open.size(); i-- > 0;) {
    if (link != 0 && b.open[i].second == link) {
      parent = b.open[i].first;
      break;
    }
    if (parent < 0) {
      parent = b.open[i].first;
    }
  }
  const auto index = static_cast<int32_t>(b.event.spans.size());
  b.event.spans.push_back(
      StageSpan{stage, now, 0, parent, link, queue_ns, 0, 0, ctxt});
  b.open.push_back({index, 0});
}

void Whodunitd::AddSpanWait(uint64_t txn, SymId stage, WaitState state,
                            int64_t ns) {
  if (ns <= 0) {
    return;
  }
  auto* found = builders_.Find(txn);
  if (found == nullptr) {
    return;
  }
  Builder& b = *found;
  for (size_t i = b.open.size(); i-- > 0;) {
    StageSpan& span = b.event.spans[static_cast<size_t>(b.open[i].first)];
    if (span.stage == stage) {
      switch (state) {
        case WaitState::kQueueWait:
          span.queue_ns += ns;
          break;
        case WaitState::kService:
          span.service_ns += ns;
          break;
        case WaitState::kLockWait:
          span.lock_ns += ns;
          break;
        default:
          break;
      }
      return;
    }
  }
}

void Whodunitd::NoteSend(uint64_t txn, SymId stage, uint32_t link) {
  auto* found = builders_.Find(txn);
  if (found == nullptr) {
    return;
  }
  Builder& b = *found;
  for (size_t i = b.open.size(); i-- > 0;) {
    if (b.event.spans[static_cast<size_t>(b.open[i].first)].stage == stage) {
      b.open[i].second = link;
      return;
    }
  }
}

void Whodunitd::EndSpan(uint64_t txn, SymId stage, int64_t now) {
  auto* found = builders_.Find(txn);
  if (found == nullptr) {
    return;
  }
  Builder& b = *found;
  for (size_t i = b.open.size(); i-- > 0;) {
    StageSpan& span = b.event.spans[static_cast<size_t>(b.open[i].first)];
    if (span.stage == stage) {
      span.duration_ns = now - span.start_ns;
      // Shift-erase: the common case closes the innermost (last)
      // entry, where this is a plain pop.
      for (size_t j = i + 1; j < b.open.size(); ++j) {
        b.open[j - 1] = b.open[j];
      }
      b.open.pop_back();
      return;
    }
  }
}

void Whodunitd::ErrorTxn(uint64_t txn) {
  if (auto* b = builders_.Find(txn)) {
    b->event.error = true;
  }
}

void Whodunitd::CompleteTxn(uint64_t txn, int64_t now) {
  auto* found = builders_.Find(txn);
  if (found == nullptr) {
    return;
  }
  Builder& b = *found;
  for (size_t i = 0; i < b.open.size(); ++i) {
    StageSpan& span = b.event.spans[static_cast<size_t>(b.open[i].first)];
    span.duration_ns = now - span.start_ns;
  }
  b.open.clear();
  b.event.end_ns = now;
  obs_published_->Add();
  if (batch_.empty()) {
    batch_opened_ns_ = now;
  }
  batch_.push_back(std::move(b.event));
  builders_.Erase(txn);
  obs_inflight_->Set(static_cast<int64_t>(builders_.size()));
  if (batch_.size() >= options_.publish_batch ||
      now - batch_opened_ns_ >= options_.publish_flush_interval_ns) {
    FlushBatch();
  }
}

void Whodunitd::FlushBatch() {
  if (batch_.empty()) {
    return;
  }
  obs_batches_->Add();
  // Move steals the pooled block; batch_ is left empty and re-pools a
  // recycled block on the next completion.
  ch_.Send(std::move(batch_));
}

void Whodunitd::Top(TopSnapshot& snap, size_t max_types, size_t max_contexts) const {
  if (flush_hook_) {
    flush_hook_();
  }
  snap.as_of_ns = sched_.now();
  snap.txns = agg_.txns();
  snap.errors = agg_.errors();
  snap.inflight = builders_.size();
  snap.sampling_total = obs_sampling_total_->Value();
  snap.sampling_sampled = obs_sampling_sampled_->Value();
  snap.history_txns = history_.retained_txns();
  snap.history_bytes = history_.retained_bytes();
  snap.history_evicted = history_.evicted_txns();
  agg_.TypeRowsInto(snap.types);
  if (snap.types.size() > max_types) {
    snap.types.resize(max_types);
  }
  agg_.StageRowsInto(snap.stages);
  agg_.CrosstalkRowsInto(snap.crosstalk);
  agg_.TopContextsInto(max_contexts, snap.contexts);
}

void Whodunitd::RenderTop(const TopSnapshot& snap, std::string& out) const {
  out.clear();
  out += "whodunitd — live transactional profile @ ";
  out += Fixed(snap.as_of_ns / 1e9);
  out += "s   (";
  out += std::to_string(snap.txns);
  out += " txns, ";
  out += std::to_string(snap.errors);
  out += " errors, ";
  out += std::to_string(snap.inflight);
  out += " in flight)\n";
  if (snap.sampling_total > 0) {
    const double pct =
        100.0 * static_cast<double>(snap.sampling_sampled) / static_cast<double>(snap.sampling_total);
    out += "  sampling: ";
    out += std::to_string(snap.sampling_sampled);
    out += "/";
    out += std::to_string(snap.sampling_total);
    out += " txns sampled (";
    out += Fixed(pct, 2);
    out += "%)   history: ";
    out += std::to_string(snap.history_txns);
    out += " txns / ";
    out += std::to_string(snap.history_bytes);
    out += " B retained, ";
    out += std::to_string(snap.history_evicted);
    out += " evicted\n";
  }
  out += "\n";
  char line[256];
  std::snprintf(line, sizeof line, "  %-26s %8s %5s %10s %10s %10s %10s %10s\n", "TYPE",
                "COUNT", "ERR", "MEAN(ms)", "P50(ms)", "P95(ms)", "P99(ms)", "P99.9(ms)");
  out += line;
  for (const auto& row : snap.types) {
    std::snprintf(line, sizeof line,
                  "  %-26s %8llu %5llu %10.2f %10.2f %10.2f %10.2f %10.2f\n",
                  row.type.c_str(), static_cast<unsigned long long>(row.count),
                  static_cast<unsigned long long>(row.errors), row.mean_ms, row.p50_ms,
                  row.p95_ms, row.p99_ms, row.p999_ms);
    out += line;
  }
  out += "\n";
  std::snprintf(line, sizeof line, "  %-26s %10s %14s\n", "STAGE", "SPANS", "BUSY(ms)");
  out += line;
  for (const auto& row : snap.stages) {
    std::snprintf(line, sizeof line, "  %-26s %10llu %14.1f\n", row.stage.c_str(),
                  static_cast<unsigned long long>(row.spans), row.busy_ms);
    out += line;
  }
  out += "\n  CROSSTALK (waiter <- holder)";
  out += snap.crosstalk.empty() ? ": none\n" : "\n";
  for (const auto& row : snap.crosstalk) {
    std::snprintf(line, sizeof line, "  %-20s <- %-20s %8llu waits %10.2f ms mean\n",
                  row.waiter.c_str(), row.holder.c_str(),
                  static_cast<unsigned long long>(row.count), row.mean_wait_ms);
    out += line;
  }
  if (!snap.contexts.empty()) {
    out += "\n  TOP CONTEXTS BY CPU\n";
    for (const auto& row : snap.contexts) {
      const std::string name =
          ctxt_namer_ ? ctxt_namer_(row.ctxt) : "ctxt_" + std::to_string(row.ctxt);
      std::snprintf(line, sizeof line, "  %12.2f ms  %s\n",
                    static_cast<double>(row.cost_ns) / 1e6, name.c_str());
      out += line;
    }
  }
}

std::string Whodunitd::QueryJson(size_t max_types, size_t max_contexts) const {
  const TopSnapshot snap = Top(max_types, max_contexts);
  std::ostringstream out;
  out << "{\"schema\":\"whodunit-live-v1\",\"as_of_ns\":" << snap.as_of_ns
      << ",\"txns\":" << snap.txns << ",\"errors\":" << snap.errors
      << ",\"inflight\":" << snap.inflight
      << ",\"sampling\":{\"txns_total\":" << snap.sampling_total
      << ",\"txns_sampled\":" << snap.sampling_sampled
      << "},\"history\":{\"retained_txns\":" << snap.history_txns
      << ",\"retained_bytes\":" << snap.history_bytes
      << ",\"evicted_txns\":" << snap.history_evicted << "},\"types\":[";
  for (size_t i = 0; i < snap.types.size(); ++i) {
    const auto& row = snap.types[i];
    out << (i ? "," : "") << "\n{\"type\":\"";
    JsonEscapeInto(out, row.type);
    out << "\",\"count\":" << row.count << ",\"errors\":" << row.errors
        << ",\"mean_ms\":" << Fixed(row.mean_ms, 3) << ",\"p50_ms\":" << Fixed(row.p50_ms, 3)
        << ",\"p95_ms\":" << Fixed(row.p95_ms, 3) << ",\"p99_ms\":" << Fixed(row.p99_ms, 3)
        << ",\"p999_ms\":" << Fixed(row.p999_ms, 3) << "}";
  }
  out << "],\"stages\":[";
  for (size_t i = 0; i < snap.stages.size(); ++i) {
    const auto& row = snap.stages[i];
    out << (i ? "," : "") << "\n{\"stage\":\"";
    JsonEscapeInto(out, row.stage);
    out << "\",\"spans\":" << row.spans << ",\"busy_ms\":" << Fixed(row.busy_ms, 3) << "}";
  }
  out << "],\"crosstalk\":[";
  for (size_t i = 0; i < snap.crosstalk.size(); ++i) {
    const auto& row = snap.crosstalk[i];
    out << (i ? "," : "") << "\n{\"waiter\":\"";
    JsonEscapeInto(out, row.waiter);
    out << "\",\"holder\":\"";
    JsonEscapeInto(out, row.holder);
    out << "\",\"count\":" << row.count << ",\"mean_wait_ms\":" << Fixed(row.mean_wait_ms, 3)
        << "}";
  }
  out << "],\"contexts\":[";
  for (size_t i = 0; i < snap.contexts.size(); ++i) {
    const auto& row = snap.contexts[i];
    out << (i ? "," : "") << "\n{\"ctxt\":" << row.ctxt << ",\"cost_ns\":" << row.cost_ns
        << ",\"name\":\"";
    JsonEscapeInto(out, ctxt_namer_ ? ctxt_namer_(row.ctxt) : "ctxt_" + std::to_string(row.ctxt));
    out << "\"}";
  }
  out << "],\"attr\":{\"schema\":\"whodunit-attr-v1\",\"rows\":[";
  const auto attr_rows = agg_.AttrRows();
  for (size_t i = 0; i < attr_rows.size(); ++i) {
    const auto& row = attr_rows[i];
    out << (i ? "," : "") << "\n{\"type\":\"";
    JsonEscapeInto(out, row.type);
    out << "\",\"stage\":\"";
    JsonEscapeInto(out, row.stage);
    out << "\",\"ctxt\":" << row.ctxt << ",\"state\":\"" << WaitStateName(row.state)
        << "\",\"ns\":" << row.ns << "}";
  }
  out << "]},\"why_tail\":{\"fast_q\":0.5,\"tail_q\":0.99,\"types\":[";
  const auto tail_types = WhyTail();
  for (size_t i = 0; i < tail_types.size(); ++i) {
    const auto& type = tail_types[i];
    out << (i ? "," : "") << "\n{\"type\":\"";
    JsonEscapeInto(out, type.type);
    out << "\",\"fast_txns\":" << type.fast_txns << ",\"tail_txns\":" << type.tail_txns
        << ",\"fast_ms\":" << Fixed(type.fast_ms, 3)
        << ",\"tail_ms\":" << Fixed(type.tail_ms, 3) << ",\"deltas\":[";
    for (size_t j = 0; j < type.deltas.size(); ++j) {
      const auto& delta = type.deltas[j];
      out << (j ? "," : "") << "{\"stage\":\"";
      JsonEscapeInto(out, delta.stage);
      out << "\",\"state\":\"" << WaitStateName(delta.state)
          << "\",\"fast_ms\":" << Fixed(delta.fast_ms, 3)
          << ",\"tail_ms\":" << Fixed(delta.tail_ms, 3)
          << ",\"delta_ms\":" << Fixed(delta.delta_ms, 3) << "}";
    }
    out << "]}";
  }
  out << "]}}\n";
  return out.str();
}

std::vector<Whodunitd::WhyTailType> Whodunitd::WhyTail(double fast_q,
                                                       double tail_q) const {
  // Group the retained history by transaction type, split each type's
  // population at its own p50/p99 latency (nearest-rank over the
  // retained sample), and compare the mean per-(stage, state)
  // critical-path cost of the two groups.
  std::map<SymId, std::vector<const TxnEvent*>> by_type;
  for (const TxnEvent* event : history_.Scan()) {
    if (event->attr.empty()) {
      continue;
    }
    by_type[event->type].push_back(event);
  }
  std::vector<WhyTailType> out;
  for (const auto& [type, events] : by_type) {
    std::vector<int64_t> latencies;
    latencies.reserve(events.size());
    for (const TxnEvent* event : events) {
      latencies.push_back(event->end_ns - event->start_ns);
    }
    std::sort(latencies.begin(), latencies.end());
    const auto rank = [&](double q) {
      const size_t n = latencies.size();
      size_t idx = static_cast<size_t>(q * static_cast<double>(n));
      return latencies[std::min(idx, n - 1)];
    };
    const int64_t fast_cut = rank(fast_q);
    const int64_t tail_cut = rank(tail_q);

    WhyTailType row;
    row.type = type == 0 ? "(untyped)" : syms_->Name(type);
    // Mean per-(stage, state) attribution of each group; every bucket
    // is normalized by the group's txn count, so a state absent from
    // one group still yields a delta.
    std::map<std::pair<SymId, uint8_t>, std::pair<int64_t, int64_t>> buckets;
    int64_t fast_total = 0;
    int64_t tail_total = 0;
    for (const TxnEvent* event : events) {
      const int64_t latency = event->end_ns - event->start_ns;
      const bool fast = latency <= fast_cut;
      const bool tail = latency >= tail_cut;
      if (!fast && !tail) {
        continue;
      }
      if (fast) {
        ++row.fast_txns;
        fast_total += latency;
      }
      if (tail) {
        ++row.tail_txns;
        tail_total += latency;
      }
      for (const AttrSlice& slice : event->attr) {
        auto& bucket = buckets[{slice.stage, static_cast<uint8_t>(slice.state)}];
        if (fast) {
          bucket.first += slice.ns;
        }
        if (tail) {
          bucket.second += slice.ns;
        }
      }
    }
    if (row.fast_txns == 0 || row.tail_txns == 0) {
      continue;
    }
    row.fast_ms = static_cast<double>(fast_total) / static_cast<double>(row.fast_txns) / 1e6;
    row.tail_ms = static_cast<double>(tail_total) / static_cast<double>(row.tail_txns) / 1e6;
    for (const auto& [key, sums] : buckets) {
      WhyTailDelta delta;
      delta.stage = syms_->Name(key.first);
      delta.state = static_cast<WaitState>(key.second);
      delta.fast_ms =
          static_cast<double>(sums.first) / static_cast<double>(row.fast_txns) / 1e6;
      delta.tail_ms =
          static_cast<double>(sums.second) / static_cast<double>(row.tail_txns) / 1e6;
      delta.delta_ms = delta.tail_ms - delta.fast_ms;
      row.deltas.push_back(std::move(delta));
    }
    // Buckets arrive in intern-id order, which is shard-dependent;
    // explicit (delta desc, stage name, state) ordering keeps the
    // report deterministic and matches the old name-keyed stable sort.
    std::sort(row.deltas.begin(), row.deltas.end(),
              [](const WhyTailDelta& a, const WhyTailDelta& b) {
                if (a.delta_ms != b.delta_ms) {
                  return a.delta_ms > b.delta_ms;
                }
                if (a.stage != b.stage) {
                  return a.stage < b.stage;
                }
                return a.state < b.state;
              });
    out.push_back(std::move(row));
  }
  // Heaviest tails first; name tiebreak keeps the report deterministic.
  std::sort(out.begin(), out.end(), [](const WhyTailType& a, const WhyTailType& b) {
    const double ga = a.tail_ms - a.fast_ms;
    const double gb = b.tail_ms - b.fast_ms;
    if (ga != gb) {
      return ga > gb;
    }
    return a.type < b.type;
  });
  return out;
}

std::string Whodunitd::RenderWhyTail() const {
  const auto types = WhyTail();
  std::ostringstream out;
  out << "whodunitd — why-tail: p99 vs p50 critical-path attribution ("
      << history_.retained_txns() << " txns retained)\n";
  if (types.empty()) {
    out << "  (no attributed history: enable --history-bytes and attribution)\n";
    return out.str();
  }
  char line[256];
  for (const auto& type : types) {
    out << "\n  " << type.type << ": p50 cohort " << type.fast_txns << " txns @ "
        << Fixed(type.fast_ms, 2) << " ms, p99 cohort " << type.tail_txns << " txns @ "
        << Fixed(type.tail_ms, 2) << " ms (gap " << Fixed(type.tail_ms - type.fast_ms, 2)
        << " ms)\n";
    std::snprintf(line, sizeof line, "    %-22s %-16s %10s %10s %10s\n", "STAGE", "STATE",
                  "P50(ms)", "P99(ms)", "DELTA(ms)");
    out << line;
    for (const auto& delta : type.deltas) {
      std::snprintf(line, sizeof line, "    %-22s %-16s %10.2f %10.2f %+10.2f\n",
                    delta.stage.c_str(), WaitStateName(delta.state), delta.fast_ms,
                    delta.tail_ms, delta.delta_ms);
      out << line;
    }
  }
  return out.str();
}

std::vector<TxnEvent> Whodunitd::RecentEvents() const {
  std::vector<TxnEvent> out;
  out.reserve(recent_.size());
  for (size_t i = 0; i < recent_.size(); ++i) {
    out.push_back(recent_[i]);
  }
  return out;
}

std::string Whodunitd::ExportSpansJson() const {
  return ExportChromeTrace(RecentEvents(), *syms_);
}

void Whodunitd::Shutdown() {
  if (shutdown_) {
    return;
  }
  shutdown_ = true;
  obs_abandoned_->Add(builders_.size());
  builders_.Clear();
  obs_inflight_->Set(0);
  // Ship the partial batch before closing: the channel is FIFO and
  // Close is in-band, so the pump ingests it before draining out —
  // post-shutdown exports are therefore batch-size invariant.
  FlushBatch();
  // Settle the history's pending batch so the final snapshot reflects
  // everything the daemon ingested.
  history_.Flush(sched_.now());
  ch_.Close();
}

}  // namespace whodunit::obs::live
