#include "src/obs/live/symbol_table.h"

namespace whodunit::obs::live {
namespace {

const std::string kEmptyName;

thread_local SymbolTable* tls_symbol_table = nullptr;

}  // namespace

SymbolTable::SymbolTable() { Intern(""); }

SymbolTable::~SymbolTable() {
  for (auto& slot : chunks_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

SymId SymbolTable::Intern(std::string_view name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) {
    return it->second;
  }
  const uint32_t id = size_.load(std::memory_order_relaxed);
  const size_t chunk_index = id / kChunkSize;
  if (chunk_index >= kMaxChunks) {
    // Table full — fold the overflow onto the empty symbol rather than
    // crash a production collector; 1M distinct names means the
    // publisher is interning per-transaction data, which is a bug.
    return 0;
  }
  Chunk* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    // Publish the chunk before the size that makes its slots visible.
    chunks_[chunk_index].store(chunk, std::memory_order_release);
  }
  chunk->names[id % kChunkSize] = std::string(name);
  size_.store(id + 1, std::memory_order_release);
  ids_.emplace(chunk->names[id % kChunkSize], id);
  return id;
}

const std::string& SymbolTable::Name(SymId id) const {
  if (id >= size_.load(std::memory_order_acquire)) {
    return kEmptyName;
  }
  const Chunk* chunk = chunks_[id / kChunkSize].load(std::memory_order_acquire);
  return chunk->names[id % kChunkSize];
}

std::vector<SymId> SymbolTable::MergeFrom(const SymbolTable& other) {
  const size_t n = other.size();
  std::vector<SymId> remap(n);
  for (SymId id = 0; id < n; ++id) {
    remap[id] = Intern(other.Name(id));
  }
  return remap;
}

SymbolTable& GlobalSymbolTable() {
  static SymbolTable table;
  return table;
}

SymbolTable& Syms() {
  return tls_symbol_table != nullptr ? *tls_symbol_table : GlobalSymbolTable();
}

ScopedSymbolTable::ScopedSymbolTable(SymbolTable& table) : prev_(tls_symbol_table) {
  tls_symbol_table = &table;
}

ScopedSymbolTable::~ScopedSymbolTable() { tls_symbol_table = prev_; }

}  // namespace whodunit::obs::live
