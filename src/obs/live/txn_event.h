// Live transaction observability: the event a stage publishes when a
// transaction it originated completes.
//
// A TxnEvent is the streaming counterpart of the post-mortem stitched
// profile (src/profiler/stitcher): one completed end-to-end
// transaction with its per-stage timeline. Stages assemble the event
// incrementally through the Whodunitd publish hooks (daemon.h) and
// finished events cross to the aggregation daemon in batches over a
// sim::Channel — the same conduit type every other inter-stage
// message uses, so publication is part of the simulated run rather
// than an out-of-band peek.
//
// The representation is built for a zero-allocation steady state:
// stage and type names are 32-bit SymIds into the shard's SymbolTable
// (symbol_table.h) — strings resolve only at render/export time — and
// the span/attribution blocks are arena-backed PooledVecs recycled
// through the thread's ArenaPool freelists (util/pooled_vec.h).
#ifndef SRC_OBS_LIVE_TXN_EVENT_H_
#define SRC_OBS_LIVE_TXN_EVENT_H_

#include <cstdint>

#include "src/context/context_tree.h"
#include "src/obs/live/symbol_table.h"
#include "src/util/pooled_vec.h"

namespace whodunit::obs::live {

// Wait-state taxonomy (docs/OBSERVABILITY.md): every nanosecond of a
// transaction's end-to-end latency is attributed to exactly one of
// these states along its critical path.
enum class WaitState : uint8_t {
  kQueueWait = 0,    // SEDA/event-queue residency before a span ran
  kService,          // CPU the span actually consumed (ChargeCpu)
  kLockWait,         // blocked on a lock (crosstalk wait sink)
  kDownstreamWait,   // waiting on a child span that had not started yet
  kSchedOther,       // remainder: disk, CPU-queueing, unmeasured time
};
inline constexpr size_t kWaitStateCount = 5;

constexpr const char* WaitStateName(WaitState s) {
  switch (s) {
    case WaitState::kQueueWait:
      return "queue_wait";
    case WaitState::kService:
      return "service";
    case WaitState::kLockWait:
      return "lock_wait";
    case WaitState::kDownstreamWait:
      return "downstream_wait";
    case WaitState::kSchedOther:
      return "sched_other";
  }
  return "unknown";
}

// One critical-path interval of a transaction, already folded by
// (stage, context, state): the output unit of AttributeTxn
// (attribution.h). The slices of one event sum exactly to its
// end-to-end latency.
struct AttrSlice {
  SymId stage = 0;
  context::NodeId ctxt = context::kEmptyContext;
  WaitState state = WaitState::kSchedOther;
  int64_t ns = 0;
};

// One stage's contiguous stretch of work for a transaction. A stage
// that is visited repeatedly (a SEDA stage once per object) produces
// one span per visit.
struct StageSpan {
  SymId stage = 0;          // interned stage name ("squid", "mysql", "WriteStage")
  int64_t start_ns = 0;     // virtual time
  int64_t duration_ns = 0;
  // Index (into TxnEvent::spans) of the span whose send caused this
  // one, -1 for the origin span. Drives the flow arrows in the Chrome
  // trace export.
  int32_t parent = -1;
  // Synopsis part piggy-backed on the message that started this span
  // (0 = none): the send/receive link the arrows are labeled with.
  uint32_t link = 0;
  // Measured wait-state components of this span (attribution feeds,
  // all 0 when the publisher does not measure them): queue residency
  // before the span started, CPU it consumed, lock wait it incurred.
  int64_t queue_ns = 0;
  int64_t service_ns = 0;
  int64_t lock_ns = 0;
  // Interned context the span's work ran under (kEmptyContext = fall
  // back to the event's root_ctxt at attribution time).
  context::NodeId ctxt = context::kEmptyContext;
};

using SpanVec = util::PooledVec<StageSpan>;
using AttrVec = util::PooledVec<AttrSlice>;

struct TxnEvent {
  uint64_t txn_id = 0;
  SymId type = 0;           // transaction type ("BestSellers", "cache_miss")
  SymId origin_stage = 0;   // stage that began the transaction
  // Interned context-tree node of the origin at completion time; the
  // aggregator's top-N context table keys on NodeIds like this.
  context::NodeId root_ctxt = context::kEmptyContext;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  bool error = false;
  SpanVec spans;
  // Critical-path attribution (attribution.h), computed by the daemon
  // pump when LiveOptions.attribution is on; slices sum to
  // end_ns - start_ns exactly.
  AttrVec attr;
};

// One publisher flush: completed events in completion order. Batches
// cross the publish channel so the pump wakes once per batch instead
// of once per transaction; completion order is preserved end to end,
// so batch boundaries can never leak into aggregation order.
using TxnBatch = util::PooledVec<TxnEvent>;

}  // namespace whodunit::obs::live

#endif  // SRC_OBS_LIVE_TXN_EVENT_H_
