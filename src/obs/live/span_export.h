// Live transaction observability: Chrome trace-event export.
//
// Serializes completed transactions' cross-stage timelines as Chrome
// trace-event JSON (the JSON Array Format with a "traceEvents" top
// level), loadable in Perfetto or chrome://tracing. Each stage gets
// one track (tid), each StageSpan becomes one complete ("X") event,
// and the synopsis-linked request edges become flow ("s"/"f") arrows
// from the sending span's track to the receiving span's start. The
// format is documented in docs/OBSERVABILITY.md.
#ifndef SRC_OBS_LIVE_SPAN_EXPORT_H_
#define SRC_OBS_LIVE_SPAN_EXPORT_H_

#include <string>
#include <vector>

#include "src/obs/live/symbol_table.h"
#include "src/obs/live/txn_event.h"

namespace whodunit::obs::live {

// Chrome trace JSON for the given transactions. Stage tracks are
// numbered in first-appearance order and named (through `syms`, in
// name order) with thread_name metadata events; timestamps are
// virtual-time microseconds.
std::string ExportChromeTrace(const std::vector<TxnEvent>& events, const SymbolTable& syms);

inline std::string ExportChromeTrace(const std::vector<TxnEvent>& events) {
  return ExportChromeTrace(events, Syms());
}

}  // namespace whodunit::obs::live

#endif  // SRC_OBS_LIVE_SPAN_EXPORT_H_
