// Retention-bounded store of completed sampled-transaction records.
//
// The production counterpart of the span ring: where the ring keeps a
// fixed COUNT of recent events for trace export, the history keeps as
// many full transaction records as fit a BYTE budget, evicting oldest
// first — FoundationDB's `profile client set <rate> <size>` retention
// model. The budget is a soft limit: events accepted between flushes
// may push the total over it temporarily; each flush settles the
// store back under budget by deleting from the old end.
//
// Flushes happen on a virtual-time interval (FDB's client profiler
// flushes every 30 seconds) driven by ingest timestamps, so the store
// needs no timer of its own and stays deterministic.
#ifndef SRC_OBS_LIVE_HISTORY_H_
#define SRC_OBS_LIVE_HISTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/live/symbol_table.h"
#include "src/obs/live/txn_event.h"
#include "src/obs/metrics.h"
#include "src/util/ring_queue.h"

namespace whodunit::obs::live {

struct HistoryOptions {
  // Soft byte budget for retained records (0 disables the store).
  size_t max_bytes = 1 << 20;
  // Virtual-time interval between flushes; a flush promotes pending
  // events into the retained ring and evicts down to the budget.
  int64_t flush_interval_ns = 30'000'000'000;
};

class TxnHistory {
 public:
  // Counters/gauges resolve against obs::Registry() at construction
  // (shard-registry rule, same as StageProfiler).
  explicit TxnHistory(HistoryOptions options = {});

  const HistoryOptions& options() const { return options_; }
  bool enabled() const { return options_.max_bytes > 0; }

  // Accepts one completed transaction record; triggers a flush when
  // the flush interval has elapsed since the last one. Takes the event
  // by value so a caller that is done with it can move it in — the
  // record then retains the event's own pooled span/attr blocks and
  // the store never allocates (the pump does exactly this; see
  // Whodunitd::Pump).
  void Ingest(TxnEvent event, int64_t now);

  // Promotes pending events into the retained ring, then deletes
  // oldest-first until the ring is back under the byte budget.
  void Flush(int64_t now);

  size_t retained_txns() const { return retained_.size(); }
  size_t retained_bytes() const { return retained_bytes_; }
  size_t pending_txns() const { return pending_.size(); }
  uint64_t evicted_txns() const { return evicted_txns_; }
  uint64_t evicted_bytes() const { return evicted_bytes_; }
  uint64_t flushes() const { return flushes_; }

  // Retained records oldest first (pending ones are not visible until
  // the next flush, mirroring FDB's flush-then-query behaviour).
  std::vector<const TxnEvent*> Scan() const;

  // Machine-readable dump of the retained ring, oldest first (schema
  // whodunit-history-v1, docs/OBSERVABILITY.md).
  std::string ExportJson() const;

  // Approximate retained footprint of one record: struct size plus the
  // pooled span/attr blocks (names are interned SymIds, so they cost
  // the record nothing). The accounting unit the byte budget is
  // charged in.
  static size_t ApproxBytes(const TxnEvent& event);

 private:
  struct Entry {
    TxnEvent event;
    size_t bytes;
  };

  HistoryOptions options_;
  util::RingQueue<Entry> retained_;
  util::RingQueue<Entry> pending_;
  size_t retained_bytes_ = 0;
  size_t pending_bytes_ = 0;
  int64_t last_flush_ns_ = 0;
  bool saw_ingest_ = false;
  uint64_t evicted_txns_ = 0;
  uint64_t evicted_bytes_ = 0;
  uint64_t flushes_ = 0;

  // Names in ExportJson resolve through the thread-current table at
  // construction (shard-registry rule).
  const SymbolTable* syms_ = &Syms();
  Counter* obs_ingested_;
  Counter* obs_flushes_;
  Counter* obs_evicted_txns_;
  Counter* obs_evicted_bytes_;
  Gauge* obs_retained_txns_;
  Gauge* obs_retained_bytes_;
};

}  // namespace whodunit::obs::live

#endif  // SRC_OBS_LIVE_HISTORY_H_
