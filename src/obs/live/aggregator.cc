#include "src/obs/live/aggregator.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace whodunit::obs::live {
namespace {

// Shared fallback name so the ingest fast path never builds a
// temporary string per event (this runs once per published txn).
const std::string kUntypedName("(untyped)");

}  // namespace

void LiveAggregator::Ingest(const TxnEvent& event) {
  obs_txns_->Add();
  obs_spans_->Add(event.spans.size());

  ++txns_;
  const std::string& tname = event.type.empty() ? kUntypedName : event.type;
  // try_emplace: the key string is only copied the first time a type
  // or stage is seen, not on every event.
  TypeState& type = by_type_.try_emplace(tname).first->second;
  type.latency_ns.Add(static_cast<uint64_t>(std::max<int64_t>(event.end_ns - event.start_ns, 0)));
  if (event.error) {
    ++type.errors;
    ++errors_;
  }
  for (const StageSpan& span : event.spans) {
    StageState& stage = by_stage_.try_emplace(span.stage).first->second;
    ++stage.spans;
    stage.busy_ns += static_cast<uint64_t>(std::max<int64_t>(span.duration_ns, 0));
  }
  if (event.root_ctxt != context::kEmptyContext) {
    // The transaction's own end-to-end latency also accrues to its
    // origin context so a type with little CPU but long waits still
    // surfaces; CPU-level attribution arrives separately via AddCost.
    cost_by_ctxt_.GetOrInsert(event.root_ctxt) += 0;
  }
  if (!event.attr.empty()) {
    obs_attr_txns_->Add();
    obs_attr_slices_->Add(event.attr.size());
    const uint32_t type_id = InternAttrName(tname);
    // Slices arrive sorted by stage (attribution.h), so memoizing the
    // previous stage's id makes interning one lookup per distinct
    // stage, not per slice.
    const std::string* last_stage = nullptr;
    uint32_t stage_id = 0;
    for (const AttrSlice& slice : event.attr) {
      if (last_stage == nullptr || *last_stage != slice.stage) {
        stage_id = InternAttrName(slice.stage);
        last_stage = &slice.stage;
      }
      attr_[{type_id, stage_id, slice.ctxt,
             static_cast<uint8_t>(slice.state)}] += slice.ns;
    }
  }
}

void LiveAggregator::AddCost(context::NodeId ctxt, uint64_t cost_ns) {
  cost_by_ctxt_.GetOrInsert(ctxt) += cost_ns;
}

void LiveAggregator::NameTag(uint64_t tag, std::string_view name) {
  auto it = tag_names_.find(tag);
  if (it == tag_names_.end()) {
    tag_names_.emplace(tag, std::string(name));
  }
}

void LiveAggregator::IngestWait(uint64_t waiter_tag, uint64_t holder_tag, uint64_t wait_ns) {
  obs_waits_->Add();
  waits_[{waiter_tag, holder_tag}].Add(static_cast<double>(wait_ns));
}

void LiveAggregator::MergeFrom(const LiveAggregator& other,
                               const std::vector<context::NodeId>& ctxt_remap) {
  for (const auto& [name, state] : other.by_type_) {
    TypeState& mine = by_type_[name];
    mine.latency_ns.Merge(state.latency_ns);
    mine.errors += state.errors;
  }
  for (const auto& [name, state] : other.by_stage_) {
    StageState& mine = by_stage_[name];
    mine.spans += state.spans;
    mine.busy_ns += state.busy_ns;
  }
  for (const auto& [key, ns] : other.attr_) {
    const context::NodeId ctxt = std::get<2>(key);
    const context::NodeId here = ctxt < ctxt_remap.size() ? ctxt_remap[ctxt] : ctxt;
    attr_[{InternAttrName(other.attr_names_[std::get<0>(key)]),
           InternAttrName(other.attr_names_[std::get<1>(key)]), here,
           std::get<3>(key)}] += ns;
  }
  // Re-base the other side's tags above everything already present so
  // contexts from different shards never alias. std::map iteration is
  // ordered, so the assignment is deterministic.
  uint64_t next_tag = 0;
  if (!tag_names_.empty()) {
    next_tag = tag_names_.rbegin()->first + 1;
  }
  for (const auto& [pair, stat] : waits_) {
    next_tag = std::max({next_tag, pair.first + 1, pair.second + 1});
  }
  std::map<uint64_t, uint64_t> tag_remap;
  auto remap_tag = [&](uint64_t tag) {
    auto [it, inserted] = tag_remap.emplace(tag, next_tag);
    if (inserted) {
      ++next_tag;
    }
    return it->second;
  };
  for (const auto& [tag, name] : other.tag_names_) {
    tag_names_.emplace(remap_tag(tag), name);
  }
  for (const auto& [pair, stat] : other.waits_) {
    waits_[{remap_tag(pair.first), remap_tag(pair.second)}].Merge(stat);
  }
  other.cost_by_ctxt_.ForEach([&](const context::NodeId& ctxt, const uint64_t& cost) {
    const context::NodeId here = ctxt < ctxt_remap.size() ? ctxt_remap[ctxt] : ctxt;
    cost_by_ctxt_.GetOrInsert(here) += cost;
  });
  txns_ += other.txns_;
  errors_ += other.errors_;
}

std::vector<LiveAggregator::TypeRow> LiveAggregator::TypeRows() const {
  std::vector<TypeRow> rows;
  rows.reserve(by_type_.size());
  for (const auto& [name, state] : by_type_) {
    TypeRow row;
    row.type = name;
    row.count = state.latency_ns.count();
    row.errors = state.errors;
    row.mean_ms = state.latency_ns.mean() / 1e6;
    row.p50_ms = state.latency_ns.Quantile(0.50) / 1e6;
    row.p95_ms = state.latency_ns.Quantile(0.95) / 1e6;
    row.p99_ms = state.latency_ns.Quantile(0.99) / 1e6;
    row.p999_ms = state.latency_ns.Quantile(0.999) / 1e6;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const TypeRow& a, const TypeRow& b) {
    if (a.count != b.count) {
      return a.count > b.count;
    }
    return a.type < b.type;
  });
  return rows;
}

std::vector<LiveAggregator::StageRow> LiveAggregator::StageRows() const {
  std::vector<StageRow> rows;
  rows.reserve(by_stage_.size());
  for (const auto& [name, state] : by_stage_) {
    rows.push_back(StageRow{name, state.spans, static_cast<double>(state.busy_ns) / 1e6});
  }
  std::sort(rows.begin(), rows.end(),
            [](const StageRow& a, const StageRow& b) { return a.busy_ms > b.busy_ms; });
  return rows;
}

std::string LiveAggregator::TagName(uint64_t tag) const {
  auto it = tag_names_.find(tag);
  return it != tag_names_.end() ? it->second : "tag_" + std::to_string(tag);
}

std::vector<LiveAggregator::PairRow> LiveAggregator::CrosstalkRows() const {
  // Fold tag pairs into named-type pairs: many tags (one per context
  // snapshot) map to one transaction type.
  std::map<std::pair<std::string, std::string>, util::RunningStat> folded;
  for (const auto& [pair, stat] : waits_) {
    folded[{TagName(pair.first), TagName(pair.second)}].Merge(stat);
  }
  std::vector<PairRow> rows;
  rows.reserve(folded.size());
  for (const auto& [names, stat] : folded) {
    rows.push_back(PairRow{names.first, names.second, stat.count(), stat.mean() / 1e6});
  }
  std::sort(rows.begin(), rows.end(),
            [](const PairRow& a, const PairRow& b) { return a.mean_wait_ms > b.mean_wait_ms; });
  return rows;
}

std::vector<LiveAggregator::CtxtRow> LiveAggregator::TopContexts(size_t n) const {
  std::vector<CtxtRow> rows;
  cost_by_ctxt_.ForEach([&](const context::NodeId& ctxt, const uint64_t& cost) {
    rows.push_back(CtxtRow{ctxt, cost});
  });
  std::sort(rows.begin(), rows.end(), [](const CtxtRow& a, const CtxtRow& b) {
    if (a.cost_ns != b.cost_ns) {
      return a.cost_ns > b.cost_ns;
    }
    return a.ctxt < b.ctxt;
  });
  if (rows.size() > n) {
    rows.resize(n);
  }
  return rows;
}

uint32_t LiveAggregator::InternAttrName(std::string_view name) {
  const auto it = attr_name_ids_.find(name);
  if (it != attr_name_ids_.end()) {
    return it->second;
  }
  const uint32_t id = static_cast<uint32_t>(attr_names_.size());
  attr_names_.emplace_back(name);
  attr_name_ids_.emplace(attr_names_.back(), id);
  return id;
}

std::vector<LiveAggregator::AttrRow> LiveAggregator::AttrRows() const {
  std::vector<AttrRow> rows;
  rows.reserve(attr_.size());
  for (const auto& [key, ns] : attr_) {
    rows.push_back(AttrRow{attr_names_[std::get<0>(key)],
                           attr_names_[std::get<1>(key)], std::get<2>(key),
                           static_cast<WaitState>(std::get<3>(key)), ns});
  }
  // attr_ is ordered by interned ids (first-seen order); re-sort by
  // name so the rows are deterministic regardless of ingest or merge
  // order. Interning is injective, so no two rows tie on all four.
  std::sort(rows.begin(), rows.end(), [](const AttrRow& a, const AttrRow& b) {
    if (const int c = a.type.compare(b.type)) return c < 0;
    if (const int c = a.stage.compare(b.stage)) return c < 0;
    if (a.ctxt != b.ctxt) return a.ctxt < b.ctxt;
    return a.state < b.state;
  });
  return rows;
}

std::string LiveAggregator::ExportAttrFolded() const {
  // Fold contexts out, re-keying by name through an ordered map so the
  // output is deterministic no matter the intern order.
  std::map<std::tuple<std::string, std::string, uint8_t>, int64_t> folded;
  for (const auto& [key, ns] : attr_) {
    folded[{attr_names_[std::get<0>(key)], attr_names_[std::get<1>(key)],
            std::get<3>(key)}] += ns;
  }
  std::string out;
  for (const auto& [key, ns] : folded) {
    out += std::get<0>(key);
    out += ';';
    out += std::get<1>(key);
    out += ';';
    out += WaitStateName(static_cast<WaitState>(std::get<2>(key)));
    out += ' ';
    out += std::to_string(ns);
    out += '\n';
  }
  return out;
}

const util::LogHistogram* LiveAggregator::HistogramFor(std::string_view type) const {
  auto it = by_type_.find(type);
  return it == by_type_.end() ? nullptr : &it->second.latency_ns;
}

}  // namespace whodunit::obs::live
