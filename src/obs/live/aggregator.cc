#include "src/obs/live/aggregator.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace whodunit::obs::live {
namespace {

// Shared fallback name for type SymId 0 (no SetTxnType ever arrived),
// resolved only at render time.
const std::string kUntypedName("(untyped)");

}  // namespace

const std::string& LiveAggregator::TypeName(SymId id) const {
  return id == 0 ? kUntypedName : syms_->Name(id);
}

void LiveAggregator::Ingest(const TxnEvent& event) {
  obs_txns_->Add();
  obs_spans_->Add(event.spans.size());

  ++txns_;
  // Integer-keyed probe; the tree node is only allocated the first
  // time a type or stage id is seen, never per event.
  TypeState& type = by_type_[event.type];
  type.latency_ns.Add(static_cast<uint64_t>(std::max<int64_t>(event.end_ns - event.start_ns, 0)));
  if (event.error) {
    ++type.errors;
    ++errors_;
  }
  for (const StageSpan& span : event.spans) {
    StageState& stage = by_stage_[span.stage];
    ++stage.spans;
    stage.busy_ns += static_cast<uint64_t>(std::max<int64_t>(span.duration_ns, 0));
  }
  if (event.root_ctxt != context::kEmptyContext) {
    // The transaction's own end-to-end latency also accrues to its
    // origin context so a type with little CPU but long waits still
    // surfaces; CPU-level attribution arrives separately via AddCost.
    cost_by_ctxt_.GetOrInsert(event.root_ctxt) += 0;
  }
  if (!event.attr.empty()) {
    obs_attr_txns_->Add();
    obs_attr_slices_->Add(event.attr.size());
    for (const AttrSlice& slice : event.attr) {
      attr_[{event.type, slice.stage, slice.ctxt,
             static_cast<uint8_t>(slice.state)}] += slice.ns;
    }
  }
}

void LiveAggregator::AddCost(context::NodeId ctxt, uint64_t cost_ns) {
  cost_by_ctxt_.GetOrInsert(ctxt) += cost_ns;
}

void LiveAggregator::NameTag(uint64_t tag, std::string_view name) {
  auto it = tag_names_.find(tag);
  if (it == tag_names_.end()) {
    tag_names_.emplace(tag, std::string(name));
  }
}

void LiveAggregator::IngestWait(uint64_t waiter_tag, uint64_t holder_tag, uint64_t wait_ns) {
  obs_waits_->Add();
  waits_[{waiter_tag, holder_tag}].Add(static_cast<double>(wait_ns));
}

void LiveAggregator::MergeFrom(const LiveAggregator& other,
                               const std::vector<context::NodeId>& ctxt_remap) {
  // Translate the other shard's symbol ids into this table. When both
  // aggregators share one table (serial runs, tests) the remap is the
  // identity and interning is a no-op lookup.
  const std::vector<SymId> sym_remap =
      syms_ == other.syms_ ? std::vector<SymId>() : syms_->MergeFrom(*other.syms_);
  const auto remap_sym = [&](SymId id) {
    return id < sym_remap.size() ? sym_remap[id] : id;
  };
  for (const auto& [id, state] : other.by_type_) {
    TypeState& mine = by_type_[remap_sym(id)];
    mine.latency_ns.Merge(state.latency_ns);
    mine.errors += state.errors;
  }
  for (const auto& [id, state] : other.by_stage_) {
    StageState& mine = by_stage_[remap_sym(id)];
    mine.spans += state.spans;
    mine.busy_ns += state.busy_ns;
  }
  for (const auto& [key, ns] : other.attr_) {
    const context::NodeId ctxt = std::get<2>(key);
    const context::NodeId here = ctxt < ctxt_remap.size() ? ctxt_remap[ctxt] : ctxt;
    attr_[{remap_sym(std::get<0>(key)), remap_sym(std::get<1>(key)), here,
           std::get<3>(key)}] += ns;
  }
  // Re-base the other side's tags above everything already present so
  // contexts from different shards never alias. std::map iteration is
  // ordered, so the assignment is deterministic.
  uint64_t next_tag = 0;
  if (!tag_names_.empty()) {
    next_tag = tag_names_.rbegin()->first + 1;
  }
  for (const auto& [pair, stat] : waits_) {
    next_tag = std::max({next_tag, pair.first + 1, pair.second + 1});
  }
  std::map<uint64_t, uint64_t> tag_remap;
  auto remap_tag = [&](uint64_t tag) {
    auto [it, inserted] = tag_remap.emplace(tag, next_tag);
    if (inserted) {
      ++next_tag;
    }
    return it->second;
  };
  for (const auto& [tag, name] : other.tag_names_) {
    tag_names_.emplace(remap_tag(tag), name);
  }
  for (const auto& [pair, stat] : other.waits_) {
    waits_[{remap_tag(pair.first), remap_tag(pair.second)}].Merge(stat);
  }
  other.cost_by_ctxt_.ForEach([&](const context::NodeId& ctxt, const uint64_t& cost) {
    const context::NodeId here = ctxt < ctxt_remap.size() ? ctxt_remap[ctxt] : ctxt;
    cost_by_ctxt_.GetOrInsert(here) += cost;
  });
  txns_ += other.txns_;
  errors_ += other.errors_;
}

void LiveAggregator::TypeRowsInto(std::vector<TypeRow>& rows) const {
  rows.resize(by_type_.size());
  size_t i = 0;
  for (const auto& [id, state] : by_type_) {
    TypeRow& row = rows[i++];
    row.type.assign(TypeName(id));
    row.count = state.latency_ns.count();
    row.errors = state.errors;
    row.mean_ms = state.latency_ns.mean() / 1e6;
    row.p50_ms = state.latency_ns.Quantile(0.50) / 1e6;
    row.p95_ms = state.latency_ns.Quantile(0.95) / 1e6;
    row.p99_ms = state.latency_ns.Quantile(0.99) / 1e6;
    row.p999_ms = state.latency_ns.Quantile(0.999) / 1e6;
  }
  std::sort(rows.begin(), rows.end(), [](const TypeRow& a, const TypeRow& b) {
    if (a.count != b.count) {
      return a.count > b.count;
    }
    return a.type < b.type;
  });
}

void LiveAggregator::StageRowsInto(std::vector<StageRow>& rows) const {
  rows.resize(by_stage_.size());
  size_t i = 0;
  for (const auto& [id, state] : by_stage_) {
    StageRow& row = rows[i++];
    row.stage.assign(syms_->Name(id));
    row.spans = state.spans;
    row.busy_ms = static_cast<double>(state.busy_ns) / 1e6;
  }
  // Busy-descending with a name tiebreak: iteration order above is
  // intern order, which differs across shards, so the tiebreak keeps
  // the view deterministic.
  std::sort(rows.begin(), rows.end(), [](const StageRow& a, const StageRow& b) {
    if (a.busy_ms != b.busy_ms) {
      return a.busy_ms > b.busy_ms;
    }
    return a.stage < b.stage;
  });
}

std::string LiveAggregator::TagName(uint64_t tag) const {
  auto it = tag_names_.find(tag);
  return it != tag_names_.end() ? it->second : "tag_" + std::to_string(tag);
}

void LiveAggregator::CrosstalkRowsInto(std::vector<PairRow>& rows) const {
  // Fold tag pairs into named-type pairs: many tags (one per context
  // snapshot) map to one transaction type.
  std::map<std::pair<std::string, std::string>, util::RunningStat> folded;
  for (const auto& [pair, stat] : waits_) {
    folded[{TagName(pair.first), TagName(pair.second)}].Merge(stat);
  }
  rows.resize(folded.size());
  size_t i = 0;
  for (const auto& [names, stat] : folded) {
    PairRow& row = rows[i++];
    row.waiter.assign(names.first);
    row.holder.assign(names.second);
    row.count = stat.count();
    row.mean_wait_ms = stat.mean() / 1e6;
  }
  std::sort(rows.begin(), rows.end(), [](const PairRow& a, const PairRow& b) {
    if (a.mean_wait_ms != b.mean_wait_ms) {
      return a.mean_wait_ms > b.mean_wait_ms;
    }
    if (a.waiter != b.waiter) {
      return a.waiter < b.waiter;
    }
    return a.holder < b.holder;
  });
}

void LiveAggregator::TopContextsInto(size_t n, std::vector<CtxtRow>& rows) const {
  rows.clear();
  cost_by_ctxt_.ForEach([&](const context::NodeId& ctxt, const uint64_t& cost) {
    rows.push_back(CtxtRow{ctxt, cost});
  });
  std::sort(rows.begin(), rows.end(), [](const CtxtRow& a, const CtxtRow& b) {
    if (a.cost_ns != b.cost_ns) {
      return a.cost_ns > b.cost_ns;
    }
    return a.ctxt < b.ctxt;
  });
  if (rows.size() > n) {
    rows.resize(n);
  }
}

std::vector<LiveAggregator::AttrRow> LiveAggregator::AttrRows() const {
  std::vector<AttrRow> rows;
  rows.reserve(attr_.size());
  for (const auto& [key, ns] : attr_) {
    rows.push_back(AttrRow{TypeName(std::get<0>(key)), syms_->Name(std::get<1>(key)),
                           std::get<2>(key), static_cast<WaitState>(std::get<3>(key)),
                           ns});
  }
  // attr_ is ordered by interned ids (first-seen order); re-sort by
  // name so the rows are deterministic regardless of ingest or merge
  // order. Interning is injective, so no two rows tie on all four.
  std::sort(rows.begin(), rows.end(), [](const AttrRow& a, const AttrRow& b) {
    if (const int c = a.type.compare(b.type)) return c < 0;
    if (const int c = a.stage.compare(b.stage)) return c < 0;
    if (a.ctxt != b.ctxt) return a.ctxt < b.ctxt;
    return a.state < b.state;
  });
  return rows;
}

std::string LiveAggregator::ExportAttrFolded() const {
  // Fold contexts out, re-keying by name through an ordered map so the
  // output is deterministic no matter the intern order.
  std::map<std::tuple<std::string, std::string, uint8_t>, int64_t> folded;
  for (const auto& [key, ns] : attr_) {
    folded[{TypeName(std::get<0>(key)), syms_->Name(std::get<1>(key)),
            std::get<3>(key)}] += ns;
  }
  std::string out;
  for (const auto& [key, ns] : folded) {
    out += std::get<0>(key);
    out += ';';
    out += std::get<1>(key);
    out += ';';
    out += WaitStateName(static_cast<WaitState>(std::get<2>(key)));
    out += ' ';
    out += std::to_string(ns);
    out += '\n';
  }
  return out;
}

const util::LogHistogram* LiveAggregator::HistogramFor(std::string_view type) const {
  for (const auto& [id, state] : by_type_) {
    if (TypeName(id) == type) {
      return &state.latency_ns;
    }
  }
  return nullptr;
}

}  // namespace whodunit::obs::live
