// Live transaction observability: the in-process aggregation daemon.
//
// Whodunitd ("whodunit daemon") closes the gap between the paper's
// post-mortem reports and an always-on profiling service: while a run
// is still in flight, every stage publishes its completed transactions
// and the daemon maintains streaming state an operator can query at
// any virtual time.
//
// Dataflow:
//
//   StageProfiler publish hooks ──► TxnBuilder table (in-flight txns)
//          │ LiveComplete                    │ finished TxnEvent
//          ▼                                 ▼
//     TxnBatch (publish buffer) ──► sim::Channel<TxnBatch>
//                                        │ one wake per batch
//                                        ▼
//                                 Pump coroutine ──► LiveAggregator
//                                        │               ▲
//                                        ▼               │ query API
//                                 recent-event ring   whodunit_top,
//                                 (span export)       QueryJson()
//
// Publication rides the same sim::Channel plumbing as application
// messages, so ingest is ordered with the simulation and the daemon
// observes transactions exactly when a real collector process would.
// Completed events buffer into one daemon-wide TxnBatch flushed on a
// size or virtual-time threshold, so the pump wakes once per batch
// instead of once per transaction; the batch preserves completion
// order and the channel is FIFO, so aggregation order — and therefore
// every export — is invariant under the batch size
// (docs/OBSERVABILITY.md "Batching and determinism").
//
// The publish path is allocation-free in steady state: names are
// interned SymIds (symbol_table.h), span/open/batch storage is pooled
// (util/pooled_vec.h), and the hot hooks take SymIds — the
// string_view overloads exist for tests and one-shot callers and pay
// one hash lookup. The query side (Top/RenderTop/QueryJson/
// ExportSpansJson) is the "wire" API whodunit_top polls; the *Into
// variants refill caller-owned buffers so a refresh loop is
// allocation-quiet once warm.
#ifndef SRC_OBS_LIVE_DAEMON_H_
#define SRC_OBS_LIVE_DAEMON_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/obs/live/aggregator.h"
#include "src/obs/live/attribution.h"
#include "src/obs/live/history.h"
#include "src/obs/live/symbol_table.h"
#include "src/obs/live/txn_event.h"
#include "src/obs/metrics.h"
#include "src/sim/channel.h"
#include "src/sim/scheduler.h"
#include "src/sim/task.h"
#include "src/util/ring_queue.h"
#include "src/util/robin_hood.h"

namespace whodunit::obs::live {

struct LiveOptions {
  // In-flight transaction cap; BeginTxn beyond it drops the txn (the
  // daemon must never be the memory leak it is meant to expose).
  size_t max_inflight = 4096;
  // Completed events retained for span export, newest last.
  size_t span_ring = 128;
  // Byte budget of the retention-bounded history store (history.h);
  // 0 disables it. The --history-bytes knob on the apps.
  size_t history_bytes = 1 << 20;
  // Virtual-time flush interval of the history store.
  int64_t history_flush_interval_ns = 30'000'000'000;
  // Critical-path wait-state attribution (attribution.h) of every
  // published event; feeds the attr tables, --why-tail, and the
  // whodunit-attr-v1 folded export.
  bool attribution = true;
  // Publish batching: completed events buffer until this many are
  // pending (1 = unbatched, every completion crosses the channel
  // alone). The --publish-batch knob on the apps.
  size_t publish_batch = 64;
  // A partial batch is flushed once this much virtual time has passed
  // since it opened, so a quiet period cannot delay ingest forever.
  int64_t publish_flush_interval_ns = 100'000'000;
};

class Whodunitd {
 public:
  explicit Whodunitd(sim::Scheduler& sched, LiveOptions options = {});
  Whodunitd(const Whodunitd&) = delete;
  Whodunitd& operator=(const Whodunitd&) = delete;
  ~Whodunitd();

  // Virtual time, for publishers that don't hold the scheduler.
  int64_t now() const { return sched_.now(); }

  // The symbol table this daemon's SymIds resolve through (the
  // thread-current table at construction). Publishers intern their
  // stable names here once at wiring time.
  SymbolTable& symbols() const { return *syms_; }

  // ---- Publish hooks (called by StageProfiler and apps) --------------
  // SymId forms are the hot path: pure integer work, no hashing, no
  // allocation in steady state. The string_view forms intern first.
  //
  // Opens a transaction and its origin span; returns the live txn id
  // (0 = dropped: over the in-flight cap). All later hooks no-op on 0.
  uint64_t BeginTxn(SymId origin_stage, int64_t now);
  uint64_t BeginTxn(std::string_view origin_stage, int64_t now) {
    return BeginTxn(syms_->Intern(origin_stage), now);
  }
  void SetTxnType(uint64_t txn, SymId type);
  void SetTxnType(uint64_t txn, std::string_view type) {
    SetTxnType(txn, syms_->Intern(type));
  }
  void SetTxnCtxt(uint64_t txn, context::NodeId ctxt);
  // Opens one stage's span for `txn`; `link` is the synopsis part on
  // the message that carried the work here (0 = none). `queue_ns` is
  // the measured queue residency of that message before this span
  // started, and `ctxt` the interned context the span runs under —
  // both feed the wait-state attribution (attribution.h).
  void JoinSpan(uint64_t txn, SymId stage, uint32_t link, int64_t now,
                int64_t queue_ns = 0, context::NodeId ctxt = context::kEmptyContext);
  void JoinSpan(uint64_t txn, std::string_view stage, uint32_t link, int64_t now,
                int64_t queue_ns = 0, context::NodeId ctxt = context::kEmptyContext) {
    JoinSpan(txn, syms_->Intern(stage), link, now, queue_ns, ctxt);
  }
  // Accumulates a measured wait-state component (kService or
  // kLockWait) onto the most recent open span of `stage` for `txn`.
  void AddSpanWait(uint64_t txn, SymId stage, WaitState state, int64_t ns);
  void AddSpanWait(uint64_t txn, std::string_view stage, WaitState state, int64_t ns) {
    AddSpanWait(txn, syms_->Intern(stage), state, ns);
  }
  // Records that the stage's open span sent a request carrying
  // synopsis part `link` (joins link arrows at the receiver).
  void NoteSend(uint64_t txn, SymId stage, uint32_t link);
  void NoteSend(uint64_t txn, std::string_view stage, uint32_t link) {
    NoteSend(txn, syms_->Intern(stage), link);
  }
  // Closes the most recent open span of `stage` for `txn`.
  void EndSpan(uint64_t txn, SymId stage, int64_t now);
  void EndSpan(uint64_t txn, std::string_view stage, int64_t now) {
    EndSpan(txn, syms_->Intern(stage), now);
  }
  void ErrorTxn(uint64_t txn);
  // Closes any still-open spans, stamps the end time, and appends the
  // finished event to the publish batch (flushed to the aggregation
  // channel on the size/interval thresholds above).
  void CompleteTxn(uint64_t txn, int64_t now);
  // Direct streaming inputs that bypass the txn builder:
  void AddCost(context::NodeId ctxt, uint64_t cost_ns) { agg_.AddCost(ctxt, cost_ns); }
  void NameTag(uint64_t tag, std::string_view name) { agg_.NameTag(tag, name); }
  void IngestWait(uint64_t waiter, uint64_t holder, uint64_t wait_ns) {
    agg_.IngestWait(waiter, holder, wait_ns);
  }

  // Called before every query snapshot so stages can flush their
  // batched per-thread cost accumulators (set by Deployment).
  void set_flush_hook(std::function<void()> hook) { flush_hook_ = std::move(hook); }
  // Renders an interned context NodeId for reports (set by the app's
  // wiring; defaults to "ctxt_<id>").
  void set_ctxt_namer(std::function<std::string(context::NodeId)> namer) {
    ctxt_namer_ = std::move(namer);
  }

  // ---- Query API ------------------------------------------------------
  struct TopSnapshot {
    int64_t as_of_ns = 0;
    uint64_t txns = 0;
    uint64_t errors = 0;
    uint64_t inflight = 0;
    // Production sampling (docs/PRODUCTION.md): deployment-wide coin
    // flips vs. transactions chosen, read from the sampling.* counters
    // of this daemon's registry.
    uint64_t sampling_total = 0;
    uint64_t sampling_sampled = 0;
    // Bounded history store occupancy and churn.
    uint64_t history_txns = 0;
    uint64_t history_bytes = 0;
    uint64_t history_evicted = 0;
    std::vector<LiveAggregator::TypeRow> types;
    std::vector<LiveAggregator::StageRow> stages;
    std::vector<LiveAggregator::PairRow> crosstalk;
    std::vector<LiveAggregator::CtxtRow> contexts;
  };
  // Refills a caller-owned snapshot in place (row/string capacity is
  // reused across refreshes — the whodunit_top poll loop).
  void Top(TopSnapshot& snap, size_t max_types = 20, size_t max_contexts = 10) const;
  TopSnapshot Top(size_t max_types = 20, size_t max_contexts = 10) const {
    TopSnapshot snap;
    Top(snap, max_types, max_contexts);
    return snap;
  }
  // The refreshing whodunit_top table: per-type latency quantiles,
  // stage throughput, crosstalk pairs, top contexts by cost. The
  // out-param form clears and refills `out`, reusing its capacity.
  void RenderTop(const TopSnapshot& snap, std::string& out) const;
  std::string RenderTop(const TopSnapshot& snap) const {
    std::string out;
    RenderTop(snap, out);
    return out;
  }
  std::string RenderTop(size_t max_types = 20, size_t max_contexts = 10) const {
    return RenderTop(Top(max_types, max_contexts));
  }
  // The same snapshot as machine-readable JSON (schema in
  // docs/OBSERVABILITY.md).
  std::string QueryJson(size_t max_types = 20, size_t max_contexts = 10) const;
  // Chrome trace JSON of the retained completed transactions.
  std::string ExportSpansJson() const;
  std::vector<TxnEvent> RecentEvents() const;

  // ---- Tail diagnosis (docs/OBSERVABILITY.md "--why-tail") -----------
  // Where the tail spends its extra time: per (stage, wait-state) mean
  // critical-path cost in the fast (<= fast_q latency) vs. tail
  // (>= tail_q latency) transactions of one type, from the retained
  // history.
  struct WhyTailDelta {
    std::string stage;
    WaitState state = WaitState::kSchedOther;
    double fast_ms = 0;
    double tail_ms = 0;
    double delta_ms = 0;  // tail_ms - fast_ms
  };
  struct WhyTailType {
    std::string type;
    uint64_t fast_txns = 0;
    uint64_t tail_txns = 0;
    double fast_ms = 0;   // mean end-to-end latency of the fast group
    double tail_ms = 0;   // mean end-to-end latency of the tail group
    std::vector<WhyTailDelta> deltas;  // delta-descending
  };
  // Computes the p99-vs-p50 differential report over the retained
  // history (empty when history is off or not yet flushed).
  std::vector<WhyTailType> WhyTail(double fast_q = 0.5,
                                   double tail_q = 0.99) const;
  // Human-readable rendering of WhyTail() for whodunit_top --why-tail.
  std::string RenderWhyTail() const;
  // Folded-stack flamegraph export (whodunit-attr-v1,
  // docs/PROFILE_FORMAT.md): "type;stage;state <ns>" per line.
  std::string ExportAttrFolded() const { return agg_.ExportAttrFolded(); }
  // Dump of the retention-bounded history (whodunit-history-v1).
  std::string ExportHistoryJson() const { return history_.ExportJson(); }

  const LiveAggregator& aggregator() const { return agg_; }
  const TxnHistory& history() const { return history_; }
  uint64_t inflight() const { return builders_.size(); }

  // Flushes the partial publish batch, closes the publish channel so
  // the pump coroutine drains and exits; call before the final
  // scheduler drain at end of run. In-flight (never completed)
  // transactions are dropped and counted. Queries that must reflect
  // every published event (end-of-run exports, golden comparisons)
  // run after Shutdown() plus one scheduler drain.
  void Shutdown();

 private:
  // One open span: (index into event.spans, last request link the span
  // sent — joins arrows at the receiver). Innermost last.
  using OpenSpan = std::pair<int32_t, uint32_t>;
  struct Builder {
    TxnEvent event;
    util::PooledVec<OpenSpan> open;
  };

  sim::Process Pump();
  // Sends the pending batch (if any) to the aggregation channel.
  void FlushBatch();

  sim::Scheduler& sched_;
  LiveOptions options_;
  sim::Channel<TxnBatch> ch_;
  LiveAggregator agg_;
  // Reused across every published event the pump attributes.
  AttrScratch attr_scratch_;
  // Session high-water attr-block capacity. Every attributed event's
  // block is pre-sized to this before attribution, so all records'
  // attr blocks land in the same arena size class — see Pump.
  size_t attr_cap_highwater_ = 0;
  TxnHistory history_;
  util::RobinHoodMap<uint64_t, Builder> builders_;
  // Completed-but-unflushed events, completion order; one Send per
  // flush.
  TxnBatch batch_;
  int64_t batch_opened_ns_ = 0;
  util::RingQueue<TxnEvent> recent_;
  uint64_t next_txn_ = 1;
  bool shutdown_ = false;
  std::function<void()> flush_hook_;
  std::function<std::string(context::NodeId)> ctxt_namer_;

  SymbolTable* syms_ = &Syms();
  Counter* obs_begun_;
  Counter* obs_dropped_;
  Counter* obs_abandoned_;
  Counter* obs_published_;
  Counter* obs_batches_;
  Gauge* obs_inflight_;
  // The deployment's sampling counters (shared by name with
  // SamplingPolicy through this daemon's registry), read at snapshot
  // time for the sampled-vs-total display.
  Counter* obs_sampling_total_;
  Counter* obs_sampling_sampled_;
};

}  // namespace whodunit::obs::live

#endif  // SRC_OBS_LIVE_DAEMON_H_
