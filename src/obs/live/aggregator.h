// Live transaction observability: online, streaming aggregation state.
//
// The LiveAggregator is the queryable core of the whodunitd daemon: it
// folds every completed TxnEvent into constant-size state — no sample
// retention — and answers the operator questions the paper's offline
// reports answer post mortem:
//
//   * per-transaction-type latency: mergeable log-bucketed histograms
//     (util::LogHistogram) giving p50/p95/p99 without storing samples;
//   * a live crosstalk matrix keyed by (waiter-type, holder-type),
//     fed by the lock observer's wait sink (src/crosstalk);
//   * top-N transaction contexts by cumulative CPU cost, keyed by
//     interned ContextTree NodeIds (flushed in batches from the
//     stage profilers' charge path);
//   * per-stage throughput / busy-time / error counters.
//
// All internal state is keyed by interned SymIds (symbol_table.h), so
// the per-event ingest fold is pure integer probes — no string hashing
// and no steady-state allocation. Ids are per-shard first-intern
// order, so every user-facing view (TypeRows, AttrRows,
// ExportAttrFolded) re-sorts by resolved name to stay deterministic
// across ingest interleavings and shard merge orders.
#ifndef SRC_OBS_LIVE_AGGREGATOR_H_
#define SRC_OBS_LIVE_AGGREGATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/context/context_tree.h"
#include "src/obs/live/symbol_table.h"
#include "src/obs/live/txn_event.h"
#include "src/obs/metrics.h"
#include "src/util/robin_hood.h"
#include "src/util/stats.h"

namespace whodunit::obs::live {

class LiveAggregator {
 public:
  // ---- Ingest (daemon side) -----------------------------------------
  void Ingest(const TxnEvent& event);
  // Cumulative CPU cost charged under an interned transaction context.
  void AddCost(context::NodeId ctxt, uint64_t cost_ns);
  // Names a crosstalk tag (profiler context id) with a transaction
  // type; unnamed tags render as "tag_<id>".
  void NameTag(uint64_t tag, std::string_view name);
  // One observed lock wait: `waiter` blocked behind `holder`.
  void IngestWait(uint64_t waiter_tag, uint64_t holder_tag, uint64_t wait_ns);

  // ---- Queries -------------------------------------------------------
  // The *Into variants refill caller-owned rows in place (string and
  // vector capacity is reused) so a refreshing poller — whodunit_top —
  // is allocation-quiet once warm.
  struct TypeRow {
    std::string type;
    uint64_t count = 0;
    uint64_t errors = 0;
    double mean_ms = 0;
    double p50_ms = 0;
    double p95_ms = 0;
    double p99_ms = 0;
    double p999_ms = 0;
  };
  // Per-type latency rows, highest count first.
  void TypeRowsInto(std::vector<TypeRow>& rows) const;
  std::vector<TypeRow> TypeRows() const {
    std::vector<TypeRow> rows;
    TypeRowsInto(rows);
    return rows;
  }

  struct StageRow {
    std::string stage;
    uint64_t spans = 0;
    double busy_ms = 0;
  };
  void StageRowsInto(std::vector<StageRow>& rows) const;
  std::vector<StageRow> StageRows() const {
    std::vector<StageRow> rows;
    StageRowsInto(rows);
    return rows;
  }

  struct PairRow {
    std::string waiter;
    std::string holder;
    uint64_t count = 0;
    double mean_wait_ms = 0;
  };
  // Live crosstalk matrix, heaviest mean wait first.
  void CrosstalkRowsInto(std::vector<PairRow>& rows) const;
  std::vector<PairRow> CrosstalkRows() const {
    std::vector<PairRow> rows;
    CrosstalkRowsInto(rows);
    return rows;
  }

  struct CtxtRow {
    context::NodeId ctxt = context::kEmptyContext;
    uint64_t cost_ns = 0;
  };
  // The n most expensive transaction contexts by cumulative cost.
  void TopContextsInto(size_t n, std::vector<CtxtRow>& rows) const;
  std::vector<CtxtRow> TopContexts(size_t n) const {
    std::vector<CtxtRow> rows;
    TopContextsInto(n, rows);
    return rows;
  }

  // Cumulative critical-path wait-state cost per (txn-type, stage,
  // context, state), from the attribution slices riding each ingested
  // event (attribution.h). Deterministically ordered.
  struct AttrRow {
    std::string type;
    std::string stage;
    context::NodeId ctxt = context::kEmptyContext;
    WaitState state = WaitState::kSchedOther;
    int64_t ns = 0;
  };
  std::vector<AttrRow> AttrRows() const;
  // Folded-stack flamegraph lines (whodunit-attr-v1,
  // docs/PROFILE_FORMAT.md): "type;stage;state <ns>\n", contexts
  // folded out, deterministic order.
  std::string ExportAttrFolded() const;

  const util::LogHistogram* HistogramFor(std::string_view type) const;
  uint64_t txns() const { return txns_; }
  uint64_t errors() const { return errors_; }

  // The symbol table this aggregator's SymIds resolve through (the
  // thread-current table at construction).
  const SymbolTable& syms() const { return *syms_; }

  // Folds another aggregator (a shard's) into this one. `ctxt_remap`
  // translates the other aggregator's ContextTree NodeIds into this
  // side's tree (the vector ContextTree::MergeFrom returns); the other
  // side's SymIds are remapped through SymbolTable::MergeFrom the same
  // way. The other side's crosstalk tags — arbitrary per-shard ids —
  // are re-based onto fresh ids here so distinct shard contexts never
  // collide; their names carry over, so name-folded views (the
  // crosstalk matrix) merge exactly. Deterministic given a fixed
  // merge order.
  void MergeFrom(const LiveAggregator& other, const std::vector<context::NodeId>& ctxt_remap);

 private:
  struct TypeState {
    util::LogHistogram latency_ns;
    uint64_t errors = 0;
  };
  struct StageState {
    uint64_t spans = 0;
    uint64_t busy_ns = 0;
  };

  std::string TagName(uint64_t tag) const;
  // Resolves a type SymId for display: id 0 renders as "(untyped)".
  const std::string& TypeName(SymId id) const;

  // Keyed by interned SymId; probes on the per-event ingest path are
  // integer compares, and a tree node is only allocated the first time
  // a key is seen — steady-state ingest never allocates.
  std::map<SymId, TypeState> by_type_;
  std::map<SymId, StageState> by_stage_;
  // (type, stage, ctxt, state) -> cumulative critical-path ns.
  std::map<std::tuple<SymId, SymId, context::NodeId, uint8_t>, int64_t> attr_;
  std::map<std::pair<uint64_t, uint64_t>, util::RunningStat> waits_;
  std::map<uint64_t, std::string> tag_names_;
  util::RobinHoodMap<context::NodeId, uint64_t> cost_by_ctxt_;
  uint64_t txns_ = 0;
  uint64_t errors_ = 0;
  // Bound at construction (shard-registry rule): an aggregator built
  // inside a shard isolate reports into that shard's metrics registry
  // and resolves names through that shard's symbol table.
  SymbolTable* syms_ = &Syms();
  Counter* obs_txns_ = &Registry().GetCounter("live.txns_ingested");
  Counter* obs_spans_ = &Registry().GetCounter("live.spans_ingested");
  Counter* obs_waits_ = &Registry().GetCounter("live.crosstalk_waits");
  Counter* obs_attr_txns_ = &Registry().GetCounter("live.attr.txns_attributed");
  Counter* obs_attr_slices_ = &Registry().GetCounter("live.attr.slices");
};

}  // namespace whodunit::obs::live

#endif  // SRC_OBS_LIVE_AGGREGATOR_H_
