#include "src/obs/live/span_export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

namespace whodunit::obs::live {
namespace {

// Virtual-time ns -> trace-format microseconds, fixed three decimals
// so the output is byte-stable for golden tests.
std::string Micros(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

void EscapeInto(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\';
    }
    out << c;
  }
}

// Chrome trace reserved color name for a span, keyed by its dominant
// measured wait-state component (docs/OBSERVABILITY.md): lock wait
// paints red, queue wait light green, service dark green. A span with
// no measurements (attribution off, or a stage with no feeds) stays
// grey.
const char* SpanColor(const StageSpan& span) {
  if (span.lock_ns <= 0 && span.queue_ns <= 0 && span.service_ns <= 0) {
    return "grey";
  }
  if (span.lock_ns >= span.queue_ns && span.lock_ns >= span.service_ns) {
    return "terrible";  // lock wait: red
  }
  if (span.queue_ns >= span.service_ns) {
    return "thread_state_runnable";  // queue wait: light green
  }
  return "thread_state_running";  // service: dark green
}

}  // namespace

std::string ExportChromeTrace(const std::vector<TxnEvent>& events, const SymbolTable& syms) {
  // One track per stage, numbered by first appearance across events.
  std::map<SymId, int> tids;
  auto tid_of = [&](SymId stage) {
    auto it = tids.find(stage);
    if (it == tids.end()) {
      it = tids.emplace(stage, static_cast<int>(tids.size())).first;
    }
    return it->second;
  };
  for (const TxnEvent& ev : events) {
    for (const StageSpan& span : ev.spans) {
      tid_of(span.stage);
    }
  }

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](auto&& body) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n{";
    body();
    out << "}";
  };

  // Metadata events go out in stage-NAME order (tids is id-ordered, so
  // re-sort by resolved name) to match the pre-interning output.
  std::vector<std::pair<const std::string*, int>> named;
  named.reserve(tids.size());
  for (const auto& [stage, tid] : tids) {
    named.emplace_back(&syms.Name(stage), tid);
  }
  std::sort(named.begin(), named.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  for (const auto& [name, tid] : named) {
    emit([&] {
      out << "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
          << ",\"args\":{\"name\":\"";
      EscapeInto(out, *name);
      out << "\"}";
    });
  }

  uint64_t flow_id = 0;
  for (const TxnEvent& ev : events) {
    for (size_t i = 0; i < ev.spans.size(); ++i) {
      const StageSpan& span = ev.spans[i];
      const int tid = tid_of(span.stage);
      emit([&] {
        out << "\"name\":\"";
        const std::string& type = syms.Name(ev.type);
        EscapeInto(out, type.empty() ? std::string("txn") : type);
        out << "\",\"cat\":\"txn\",\"ph\":\"X\",\"cname\":\"" << SpanColor(span)
            << "\",\"pid\":1,\"tid\":" << tid
            << ",\"ts\":" << Micros(span.start_ns) << ",\"dur\":" << Micros(span.duration_ns)
            << ",\"args\":{\"txn\":" << ev.txn_id << ",\"stage\":\"";
        EscapeInto(out, syms.Name(span.stage));
        out << "\",\"ctxt\":" << ev.root_ctxt << "}";
      });
      // Request edge: an arrow from the sending span's track to this
      // span's start, labeled with the synopsis part that linked them.
      if (span.parent >= 0 && static_cast<size_t>(span.parent) < ev.spans.size()) {
        const StageSpan& parent = ev.spans[static_cast<size_t>(span.parent)];
        const uint64_t id = ++flow_id;
        emit([&] {
          out << "\"name\":\"synopsis_" << span.link << "\",\"cat\":\"flow\",\"ph\":\"s\","
              << "\"pid\":1,\"tid\":" << tid_of(parent.stage) << ",\"ts\":"
              << Micros(span.start_ns) << ",\"id\":" << id;
        });
        emit([&] {
          out << "\"name\":\"synopsis_" << span.link << "\",\"cat\":\"flow\",\"ph\":\"f\","
              << "\"bp\":\"e\",\"pid\":1,\"tid\":" << tid << ",\"ts\":"
              << Micros(span.start_ns) << ",\"id\":" << id;
        });
      }
    }
  }
  out << "\n]}\n";
  return out.str();
}

}  // namespace whodunit::obs::live
