// Critical-path latency attribution for a completed transaction
// (docs/OBSERVABILITY.md "Wait-state taxonomy").
//
// AttributeTxn walks the span DAG of one TxnEvent (parent links ride
// the synopsis, daemon.h) and splits the end-to-end latency into
// wait-state slices along the critical path: every nanosecond between
// event.start_ns and event.end_ns lands in exactly one
// (stage, context, state) bucket, so the slices always sum to the
// end-to-end latency exactly. The extraction is deterministic —
// same event, same slices — which is what keeps merged attribution
// profiles byte-identical across shard/thread counts.
#ifndef SRC_OBS_LIVE_ATTRIBUTION_H_
#define SRC_OBS_LIVE_ATTRIBUTION_H_

#include <vector>

#include "src/obs/live/txn_event.h"

namespace whodunit::obs::live {

// Reusable working buffers for AttributeTxn. The walk runs once per
// published transaction on the daemon's ingest path; a caller that
// attributes a stream of events keeps one scratch alive so the
// per-event cost is the walk, not six vector allocations
// (bench_ablation_live_obs gates the per-txn overhead).
struct AttrScratch {
  std::vector<uint32_t> child_off;
  std::vector<uint32_t> child_idx;
  std::vector<uint32_t> cursor;
  std::vector<int64_t> subtree_end;
  // Per-event stage table: unique stage names in sorted order, and
  // each span's rank in it. Slices then sort and fold on integer
  // ranks instead of re-comparing strings.
  std::vector<const std::string*> stages;
  std::vector<uint32_t> span_rank;
  struct RawSlice {
    uint32_t rank;
    context::NodeId ctxt;
    uint8_t state;
    int64_t ns;
  };
  std::vector<RawSlice> raw;
};

// Extracts the critical path of `event` and returns its wait-state
// slices, folded by (stage, ctxt, state) and deterministically
// ordered. Empty when the event has no spans.
std::vector<AttrSlice> AttributeTxn(const TxnEvent& event,
                                    AttrScratch& scratch);

// One-shot convenience overload (tests, ad-hoc callers).
inline std::vector<AttrSlice> AttributeTxn(const TxnEvent& event) {
  AttrScratch scratch;
  return AttributeTxn(event, scratch);
}

}  // namespace whodunit::obs::live

#endif  // SRC_OBS_LIVE_ATTRIBUTION_H_
