// Critical-path latency attribution for a completed transaction
// (docs/OBSERVABILITY.md "Wait-state taxonomy").
//
// AttributeTxn walks the span DAG of one TxnEvent (parent links ride
// the synopsis, daemon.h) and splits the end-to-end latency into
// wait-state slices along the critical path: every nanosecond between
// event.start_ns and event.end_ns lands in exactly one
// (stage, context, state) bucket, so the slices always sum to the
// end-to-end latency exactly. The extraction is deterministic —
// same event, same slices — which is what keeps merged attribution
// profiles byte-identical across shard/thread counts.
#ifndef SRC_OBS_LIVE_ATTRIBUTION_H_
#define SRC_OBS_LIVE_ATTRIBUTION_H_

#include <vector>

#include "src/obs/live/symbol_table.h"
#include "src/obs/live/txn_event.h"

namespace whodunit::obs::live {

// Reusable working buffers for AttributeTxn. The walk runs once per
// published transaction on the daemon's ingest path; a caller that
// attributes a stream of events keeps one scratch alive so the
// per-event cost is the walk alone — after warmup neither the scratch
// nor the pooled output block touches the allocator
// (bench_ablation_live_obs gates the per-txn overhead and asserts the
// zero-allocation steady state).
struct AttrScratch {
  std::vector<uint32_t> child_off;
  std::vector<uint32_t> child_idx;
  std::vector<uint32_t> cursor;
  std::vector<int64_t> subtree_end;
  // Per-event stage table: unique stage symbols sorted by NAME (so
  // slice ordering matches the pre-interning string sort), and each
  // span's rank in it. Slices then sort and fold on integer ranks.
  std::vector<SymId> stages;
  std::vector<uint32_t> span_rank;
  struct RawSlice {
    uint32_t rank;
    context::NodeId ctxt;
    uint8_t state;
    int64_t ns;
  };
  std::vector<RawSlice> raw;
};

// Extracts the critical path of `event` and fills `out` with its
// wait-state slices, folded by (stage, ctxt, state) and ordered by
// stage name (resolved through `syms`), then ctxt, then state. `out`
// is cleared first; it may be event.attr itself (the daemon attributes
// in place). Empty when the event has no spans.
void AttributeTxn(const TxnEvent& event, const SymbolTable& syms,
                  AttrScratch& scratch, AttrVec& out);

// One-shot convenience overload (tests, ad-hoc callers): resolves
// names through the calling thread's Syms().
inline AttrVec AttributeTxn(const TxnEvent& event) {
  AttrScratch scratch;
  AttrVec out;
  AttributeTxn(event, Syms(), scratch, out);
  return out;
}

}  // namespace whodunit::obs::live

#endif  // SRC_OBS_LIVE_ATTRIBUTION_H_
