#include "src/obs/live/history.h"

#include <sstream>
#include <utility>

namespace whodunit::obs::live {
namespace {

void JsonEscapeInto(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\';
    }
    out << (c == '\n' ? ' ' : c);
  }
}

}  // namespace

TxnHistory::TxnHistory(HistoryOptions options)
    : options_(options),
      obs_ingested_(&Registry().GetCounter("history.txns_ingested")),
      obs_flushes_(&Registry().GetCounter("history.flushes")),
      obs_evicted_txns_(&Registry().GetCounter("history.evicted_txns")),
      obs_evicted_bytes_(&Registry().GetCounter("history.evicted_bytes")),
      obs_retained_txns_(&Registry().GetGauge("history.retained_txns")),
      obs_retained_bytes_(&Registry().GetGauge("history.retained_bytes")) {}

size_t TxnHistory::ApproxBytes(const TxnEvent& event) {
  // Names are interned, so the record's footprint is the struct plus
  // its pooled span/attr blocks — capacity, not size, since the pooled
  // block is what the record actually holds onto.
  size_t bytes = sizeof(TxnEvent);
  bytes += event.spans.capacity() * sizeof(StageSpan);
  bytes += event.attr.capacity() * sizeof(AttrSlice);
  return bytes;
}

void TxnHistory::Ingest(TxnEvent event, int64_t now) {
  if (!enabled()) {
    return;
  }
  if (!saw_ingest_) {
    // The flush clock starts at the first record, not at virtual time
    // zero, so a late-starting daemon does not flush immediately.
    saw_ingest_ = true;
    last_flush_ns_ = now;
  }
  const size_t bytes = ApproxBytes(event);
  pending_.push_back(Entry{std::move(event), bytes});
  pending_bytes_ += bytes;
  obs_ingested_->Add();
  if (now - last_flush_ns_ >= options_.flush_interval_ns) {
    Flush(now);
  }
}

void TxnHistory::Flush(int64_t now) {
  if (!enabled() || (pending_.empty() && retained_bytes_ <= options_.max_bytes)) {
    last_flush_ns_ = now;
    return;
  }
  ++flushes_;
  obs_flushes_->Add();
  while (!pending_.empty()) {
    retained_bytes_ += pending_.front().bytes;
    retained_.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  pending_bytes_ = 0;
  // Oldest-first eviction down to the soft limit. A single record
  // larger than the whole budget still stays until a newer one
  // arrives — the store never evicts its only record to emptiness
  // unless the budget forces it.
  while (retained_bytes_ > options_.max_bytes && !retained_.empty()) {
    retained_bytes_ -= retained_.front().bytes;
    ++evicted_txns_;
    evicted_bytes_ += retained_.front().bytes;
    obs_evicted_txns_->Add();
    obs_evicted_bytes_->Add(retained_.front().bytes);
    retained_.pop_front();
  }
  obs_retained_txns_->Set(static_cast<int64_t>(retained_.size()));
  obs_retained_bytes_->Set(static_cast<int64_t>(retained_bytes_));
  last_flush_ns_ = now;
}

std::vector<const TxnEvent*> TxnHistory::Scan() const {
  std::vector<const TxnEvent*> out;
  out.reserve(retained_.size());
  for (size_t i = 0; i < retained_.size(); ++i) {
    out.push_back(&retained_[i].event);
  }
  return out;
}

std::string TxnHistory::ExportJson() const {
  std::ostringstream out;
  out << "{\"schema\":\"whodunit-history-v1\",\"retained_txns\":" << retained_.size()
      << ",\"retained_bytes\":" << retained_bytes_ << ",\"evicted_txns\":" << evicted_txns_
      << ",\"evicted_bytes\":" << evicted_bytes_ << ",\"flushes\":" << flushes_
      << ",\"txns\":[";
  bool first = true;
  for (size_t e = 0; e < retained_.size(); ++e) {
    const TxnEvent& ev = retained_[e].event;
    out << (first ? "" : ",") << "\n{\"txn_id\":" << ev.txn_id << ",\"type\":\"";
    JsonEscapeInto(out, syms_->Name(ev.type));
    out << "\",\"origin\":\"";
    JsonEscapeInto(out, syms_->Name(ev.origin_stage));
    out << "\",\"start_ns\":" << ev.start_ns << ",\"end_ns\":" << ev.end_ns
        << ",\"error\":" << (ev.error ? "true" : "false") << ",\"spans\":[";
    for (size_t i = 0; i < ev.spans.size(); ++i) {
      const StageSpan& span = ev.spans[i];
      out << (i ? "," : "") << "{\"stage\":\"";
      JsonEscapeInto(out, syms_->Name(span.stage));
      out << "\",\"start_ns\":" << span.start_ns << ",\"duration_ns\":" << span.duration_ns
          << ",\"parent\":" << span.parent << ",\"link\":" << span.link << "}";
    }
    out << "]}";
    first = false;
  }
  out << "]}\n";
  return out.str();
}

}  // namespace whodunit::obs::live
