#include "src/obs/live/attribution.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace whodunit::obs::live {

void AttributeTxn(const TxnEvent& event, const SymbolTable& syms,
                  AttrScratch& scratch, AttrVec& out) {
  out.clear();
  if (event.spans.empty() || event.end_ns <= event.start_ns) return;
  const size_t n = event.spans.size();

  // Children grouped by parent in one flat array (counting sort on the
  // parent index). The daemon appends spans in join order, so children
  // always carry larger indices than their parents and index order is
  // a stable tiebreak for equal starts. Spans with no recorded parent
  // (beyond the origin) are grafted onto the origin so every
  // nanosecond stays reachable from the root walk.
  const auto parent_of = [&](size_t i) -> size_t {
    const int32_t p = event.spans[i].parent;
    return (p < 0 || static_cast<size_t>(p) >= i) ? 0 : static_cast<size_t>(p);
  };
  std::vector<uint32_t>& child_off = scratch.child_off;
  std::vector<uint32_t>& child_idx = scratch.child_idx;
  child_off.assign(n + 1, 0);
  for (size_t i = 1; i < n; ++i) {
    ++child_off[parent_of(i) + 1];
  }
  for (size_t i = 1; i <= n; ++i) {
    child_off[i] += child_off[i - 1];
  }
  child_idx.resize(n - 1);
  scratch.cursor.assign(child_off.begin(), child_off.end() - 1);
  for (size_t i = 1; i < n; ++i) {
    child_idx[scratch.cursor[parent_of(i)]++] = static_cast<uint32_t>(i);
  }
  for (size_t p = 0; p < n; ++p) {
    const auto begin = child_idx.begin() + child_off[p];
    const auto end = child_idx.begin() + child_off[p + 1];
    // Spans join in time order in the common case; only sort a
    // sibling list that actually arrived out of order.
    const bool sorted = std::is_sorted(begin, end, [&](uint32_t a, uint32_t b) {
      return event.spans[a].start_ns < event.spans[b].start_ns;
    });
    if (!sorted) {
      std::stable_sort(begin, end, [&](uint32_t a, uint32_t b) {
        return event.spans[a].start_ns < event.spans[b].start_ns;
      });
    }
  }

  // subtree_end[i]: last activity anywhere under span i. Children have
  // larger indices, so one reverse pass suffices.
  std::vector<int64_t>& subtree_end = scratch.subtree_end;
  subtree_end.resize(n);
  for (size_t i = n; i-- > 0;) {
    const StageSpan& s = event.spans[i];
    int64_t end = s.start_ns + s.duration_ns;
    for (uint32_t c = child_off[i]; c < child_off[i + 1]; ++c) {
      end = std::max(end, subtree_end[child_idx[c]]);
    }
    subtree_end[i] = end;
  }

  // Rank every span's stage once so slice ordering below is pure
  // integer work: `stages` ends up unique and sorted by NAME (rank
  // order IS name order — the determinism contract the exports rely
  // on), span_rank[i] is span i's index into it.
  std::vector<SymId>& stages = scratch.stages;
  stages.clear();
  for (const StageSpan& s : event.spans) {
    stages.push_back(s.stage);
  }
  const auto by_name = [&syms](SymId a, SymId b) { return syms.Name(a) < syms.Name(b); };
  std::sort(stages.begin(), stages.end(), by_name);
  stages.erase(std::unique(stages.begin(), stages.end()), stages.end());
  std::vector<uint32_t>& span_rank = scratch.span_rank;
  span_rank.resize(n);
  for (size_t i = 0; i < n; ++i) {
    span_rank[i] = static_cast<uint32_t>(
        std::lower_bound(stages.begin(), stages.end(), event.spans[i].stage, by_name) -
        stages.begin());
  }

  // Unfolded slices carry stage ranks; symbols are resolved back once
  // per output bucket at the end.
  std::vector<AttrScratch::RawSlice>& raw = scratch.raw;
  raw.clear();
  const auto ctxt_of = [&](const StageSpan& s) {
    return s.ctxt != context::kEmptyContext ? s.ctxt : event.root_ctxt;
  };
  const auto add = [&](size_t span, WaitState state, int64_t ns) {
    if (ns <= 0) return;
    raw.push_back({span_rank[span], ctxt_of(event.spans[span]),
                   static_cast<uint8_t>(state), ns});
  };

  // Walk the critical path: span i owns the window [lo, hi). Intervals
  // where a child subtree is active are handed down to that child; the
  // gap before each child splits into the child's measured queue
  // residency, then CPU this span was measurably burning, then
  // downstream wait on the child tier. The tail after the last child
  // is the span's own time: measured CPU, then lock wait, then the
  // unmeasured remainder (disk, CPU queueing, scheduler).
  const auto attribute = [&](auto&& self, size_t i, int64_t lo,
                             int64_t hi) -> void {
    const StageSpan& s = event.spans[i];
    int64_t service_left = std::max<int64_t>(0, s.service_ns);
    const int64_t lock_left = std::max<int64_t>(0, s.lock_ns);
    int64_t cursor = lo;
    for (uint32_t ci = child_off[i]; ci < child_off[i + 1]; ++ci) {
      const uint32_t child = child_idx[ci];
      const StageSpan& c = event.spans[child];
      const int64_t cs = std::clamp(c.start_ns, cursor, hi);
      const int64_t ce = std::clamp(subtree_end[child], cs, hi);
      int64_t gap = cs - cursor;
      const int64_t queued = std::min(std::max<int64_t>(0, c.queue_ns), gap);
      add(child, WaitState::kQueueWait, queued);
      gap -= queued;
      const int64_t burned = std::min(service_left, gap);
      add(i, WaitState::kService, burned);
      service_left -= burned;
      gap -= burned;
      add(i, WaitState::kDownstreamWait, gap);
      if (ce > cs) self(self, child, cs, ce);
      cursor = std::max(cursor, ce);
    }
    int64_t tail = hi - cursor;
    const int64_t burned = std::min(service_left, tail);
    add(i, WaitState::kService, burned);
    tail -= burned;
    const int64_t locked = std::min(lock_left, tail);
    add(i, WaitState::kLockWait, locked);
    tail -= locked;
    add(i, WaitState::kSchedOther, tail);
  };
  attribute(attribute, 0, event.start_ns, event.end_ns);

  // Fold to deterministically-ordered (stage, ctxt, state) buckets —
  // rank order IS name order, so this matches the pre-interning string
  // sort. The sort need not be stable: equal-key slices are summed, so
  // their relative order cannot show in the output.
  std::sort(raw.begin(), raw.end(),
            [](const AttrScratch::RawSlice& a, const AttrScratch::RawSlice& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              if (a.ctxt != b.ctxt) return a.ctxt < b.ctxt;
              return a.state < b.state;
            });
  out.reserve(raw.size());
  uint32_t last_rank = 0;
  for (const AttrScratch::RawSlice& r : raw) {
    if (!out.empty() && last_rank == r.rank && out.back().ctxt == r.ctxt &&
        out.back().state == static_cast<WaitState>(r.state)) {
      out.back().ns += r.ns;
    } else {
      out.push_back(AttrSlice{stages[r.rank], r.ctxt,
                              static_cast<WaitState>(r.state), r.ns});
      last_rank = r.rank;
    }
  }
}

}  // namespace whodunit::obs::live
