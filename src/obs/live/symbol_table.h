// Interned stage/type names for the live publish pipeline.
//
// Publishers (StageProfiler, the apps' SEDA stages) used to hand the
// whodunitd daemon stage and transaction-type names as strings, which
// meant one std::string copy per publish hook and a string hash per
// aggregation probe — the dominant cost of the always-on path. A
// SymbolTable interns each name once at wiring time; everything that
// crosses the publish channel afterwards is a 32-bit SymId, and the
// strings are resolved only where a human (or an export format) needs
// them: whodunit_top, QueryJson, the span/attr exports, the history
// dump.
//
// Concurrency contract: one writer (the shard that owns the table),
// any number of lock-free readers. Interned entries live in fixed-size
// chunks that are never moved or mutated after publication, and the
// table publishes its size with release ordering, so a reader that
// observes id < size() can resolve Name(id) without synchronization.
// Interning itself is single-writer (each shard interns only into its
// own table).
#ifndef SRC_OBS_LIVE_SYMBOL_TABLE_H_
#define SRC_OBS_LIVE_SYMBOL_TABLE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace whodunit::obs::live {

// 0 is always the empty string — the "no name yet" id, rendered as
// "(untyped)" where a transaction type never arrived.
using SymId = uint32_t;

class SymbolTable {
 public:
  static constexpr size_t kChunkSize = 256;
  static constexpr size_t kMaxChunks = 4096;  // 1M symbols per table

  SymbolTable();
  ~SymbolTable();
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  // Returns the id of `name`, interning it first if new. Writer-side
  // only; ids are assigned in first-intern order and never change.
  SymId Intern(std::string_view name);

  // Resolves an id to its name. Lock-free; safe concurrently with the
  // writer's Intern calls. Out-of-range ids resolve to "".
  const std::string& Name(SymId id) const;

  // Number of interned symbols (ids are [0, size)).
  size_t size() const { return size_.load(std::memory_order_acquire); }

  // Interns every symbol of `other` into this table, in the other
  // table's id order (deterministic), and returns the translation:
  // remap[other_id] == the id here. The shard-merge counterpart of
  // ContextTree::MergeFrom.
  std::vector<SymId> MergeFrom(const SymbolTable& other);

 private:
  struct Chunk {
    std::string names[kChunkSize];
  };

  std::atomic<Chunk*> chunks_[kMaxChunks] = {};
  // Writer-side reverse index; readers never touch it.
  std::map<std::string, SymId, std::less<>> ids_;
  std::atomic<uint32_t> size_{0};
};

// The calling thread's current symbol table. Defaults to the
// process-wide table; a ParallelRunner shard installs its own through
// ScopedSymbolTable (ShardEnv::Scope) so shards never share a writer.
SymbolTable& Syms();
SymbolTable& GlobalSymbolTable();

// Installs `table` as the calling thread's Syms() for the scope's
// lifetime; restores the previous table on destruction.
class ScopedSymbolTable {
 public:
  explicit ScopedSymbolTable(SymbolTable& table);
  ~ScopedSymbolTable();
  ScopedSymbolTable(const ScopedSymbolTable&) = delete;
  ScopedSymbolTable& operator=(const ScopedSymbolTable&) = delete;

 private:
  SymbolTable* prev_;
};

}  // namespace whodunit::obs::live

#endif  // SRC_OBS_LIVE_SYMBOL_TABLE_H_
