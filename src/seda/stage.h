// SEDA middleware with transaction-context propagation.
//
// Figure 5 of the paper: stage queues carry a transaction context per
// element; a stage worker dequeues an element, computes its current
// transaction context by concatenating the element's context with the
// current stage (pruning loops), executes, and stamps any elements it
// enqueues downstream with that context. Applications built on the
// library need no modification for transactional profiling.
#ifndef SRC_SEDA_STAGE_H_
#define SRC_SEDA_STAGE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/context/context_tree.h"
#include "src/context/transaction_context.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/channel.h"
#include "src/sim/scheduler.h"
#include "src/sim/task.h"

namespace whodunit::seda {

using StageId = uint32_t;

struct QueueElem {
  uint64_t payload;
  // The interned transaction context (a 4-byte handle into the global
  // context tree), so enqueueing never copies an element sequence.
  context::NodeId tran_ctxt = context::kEmptyContext;
  // Production sampling (docs/PRODUCTION.md): the transaction's
  // sampling decision rides beside the context handle; unsampled
  // elements skip context concatenation entirely.
  bool sampled = true;
  // Virtual time the element entered its queue (stamped by
  // Stage::Enqueue); the dequeueing worker's queue residency is
  // now - enqueued_ns, the kQueueWait attribution feed.
  int64_t enqueued_ns = 0;
};

class Stage;

// One SEDA application: a set of stages wired by queues.
class StageGraph {
 public:
  explicit StageGraph(sim::Scheduler& sched) : sched_(sched) {}

  // Creates a stage with `workers` worker threads running `body`.
  // Returns its id. Stages are started with Start().
  struct WorkerContext;
  using Body = std::function<sim::Task<void>(WorkerContext&)>;
  StageId AddStage(std::string name, int workers, Body body);

  Stage& stage(StageId id) { return *stages_[id]; }
  const Stage& stage(StageId id) const { return *stages_[id]; }
  const std::string& StageName(StageId id) const;
  size_t stage_count() const { return stages_.size(); }

  // Injects an external request into a stage's input queue with an
  // empty transaction context. `sampled` is the fresh transaction's
  // sampling decision (profiler::SamplingPolicy::Decide at the
  // origin); unsampled requests flow through the graph without any
  // context-tree work.
  void InjectExternal(StageId stage, uint64_t payload, bool sampled = true);

  // Spawns all worker processes.
  void Start();
  // Closes all stage queues; workers drain and exit.
  void Stop();

  void set_tracking(bool on) { tracking_ = on; }
  bool tracking() const { return tracking_; }
  // Disables §4.1 loop pruning (full history, for debugging).
  void set_pruning(bool on) { pruning_ = on; }
  bool pruning() const { return pruning_; }

  // Fired when a worker's current transaction context changes;
  // the worker index is global across stages. Receives the interned
  // node id (materialize via GlobalContextTree() for the sequence)
  // and the element's sampling decision (node is kEmptyContext when
  // unsampled — no concatenation was performed).
  using ContextListener =
      std::function<void(StageId, int worker, context::NodeId, bool sampled)>;
  void set_context_listener(ContextListener listener) { listener_ = std::move(listener); }

  sim::Scheduler& scheduler() { return sched_; }

  // The execution context a stage body receives.
  struct WorkerContext {
    StageGraph& graph;
    StageId stage;
    int worker;  // index within the stage
    uint64_t payload;
    // Figure 5, lines 10-13: enqueue downstream with the current
    // transaction context.
    void EnqueueTo(StageId next, uint64_t next_payload);
    context::NodeId current_node() const { return curr_node; }
    context::TransactionContext current_context() const {
      return context::GlobalContextTree().Materialize(curr_node);
    }

    context::NodeId curr_node = context::kEmptyContext;
    // The element's sampling decision, propagated to every element
    // this worker enqueues downstream.
    bool sampled = true;
    // Queue residency of the element this worker is executing
    // (dequeue time minus Stage::Enqueue stamp).
    int64_t queue_wait_ns = 0;
  };

 private:
  friend class Stage;

  sim::Scheduler& sched_;
  std::vector<std::unique_ptr<Stage>> stages_;
  bool tracking_ = true;
  bool pruning_ = true;
  ContextListener listener_;
};

class Stage {
 public:
  Stage(StageGraph& graph, StageId id, std::string name, int workers, StageGraph::Body body);

  void Enqueue(QueueElem elem) {
    elem.enqueued_ns = graph_.scheduler().now();
    queue_.Send(std::move(elem));
  }
  void Close() { queue_.Close(); }

  const std::string& name() const { return name_; }
  StageId id() const { return id_; }
  int workers() const { return workers_; }
  uint64_t processed() const { return processed_; }

  void Start();

 private:
  sim::Process WorkerLoop(int worker);

  StageGraph& graph_;
  StageId id_;
  std::string name_;
  int workers_;
  StageGraph::Body body_;
  sim::Channel<QueueElem> queue_;
  uint64_t processed_ = 0;

  // Self-observability handles, resolved once (see docs/METRICS.md).
  obs::Counter* obs_processed_;
  obs::Counter* obs_concats_;
  obs::Histogram* obs_queue_depth_;
  obs::Histogram* obs_element_ns_;
  obs::Histogram* obs_queue_wait_;
};

}  // namespace whodunit::seda

#endif  // SRC_SEDA_STAGE_H_
