#include "src/seda/stage.h"

#include <algorithm>
#include <utility>

namespace whodunit::seda {

StageId StageGraph::AddStage(std::string name, int workers, Body body) {
  const auto id = static_cast<StageId>(stages_.size());
  stages_.push_back(std::make_unique<Stage>(*this, id, std::move(name), workers,
                                            std::move(body)));
  return id;
}

const std::string& StageGraph::StageName(StageId id) const { return stages_[id]->name(); }

void StageGraph::InjectExternal(StageId stage, uint64_t payload, bool sampled) {
  stages_[stage]->Enqueue(QueueElem{payload, context::kEmptyContext, sampled});
}

void StageGraph::Start() {
  for (auto& s : stages_) {
    s->Start();
  }
}

void StageGraph::Stop() {
  for (auto& s : stages_) {
    s->Close();
  }
}

void StageGraph::WorkerContext::EnqueueTo(StageId next, uint64_t next_payload) {
  QueueElem elem{next_payload, context::kEmptyContext, sampled};
  if (graph.tracking() && sampled) {
    elem.tran_ctxt = curr_node;  // Figure 5, line 12
  }
  graph.stage(next).Enqueue(std::move(elem));
}

Stage::Stage(StageGraph& graph, StageId id, std::string name, int workers,
             StageGraph::Body body)
    : graph_(graph),
      id_(id),
      name_(std::move(name)),
      workers_(workers),
      body_(std::move(body)),
      queue_(graph.scheduler()),
      obs_processed_(&obs::Registry().GetCounter("seda.elements_processed")),
      obs_concats_(&obs::Registry().GetCounter("seda.context_concats")),
      obs_queue_depth_(&obs::Registry().GetHistogram("seda.queue_depth",
                                                     obs::DefaultDepthBounds())),
      obs_element_ns_(&obs::Registry().GetHistogram("seda.element_ns",
                                                    obs::DefaultLatencyBoundsNs())),
      obs_queue_wait_(&obs::Registry().GetHistogram("seda.queue_wait_ns",
                                                    obs::DefaultLatencyBoundsNs())) {}

void Stage::Start() {
  for (int w = 0; w < workers_; ++w) {
    sim::Spawn(graph_.sched_, WorkerLoop(w));
  }
}

sim::Process Stage::WorkerLoop(int worker) {
  for (;;) {
    auto elem = co_await queue_.Receive();
    if (!elem) {
      break;
    }
    obs_queue_depth_->Observe(queue_.pending());
    StageGraph::WorkerContext wc{graph_, id_, worker, elem->payload,
                                 context::kEmptyContext, elem->sampled};
    wc.queue_wait_ns =
        std::max<int64_t>(0, graph_.scheduler().now() - elem->enqueued_ns);
    obs_queue_wait_->Observe(static_cast<uint64_t>(wc.queue_wait_ns));
    if (graph_.tracking()) {
      if (elem->sampled) {
        // Figure 5, lines 5-6: current context = element's context
        // concatenated with the current stage (loops pruned by Append).
        // One hash-cons probe against the global context tree.
        wc.curr_node = context::GlobalContextTree().Append(
            elem->tran_ctxt, context::Element{context::ElementKind::kStage, id_},
            graph_.pruning());
        obs_concats_->Add();
      }
      if (graph_.listener_) {
        graph_.listener_(id_, worker, wc.curr_node, elem->sampled);
      }
    }
    ++processed_;
    obs_processed_->Add();
    const sim::SimTime start = graph_.scheduler().now();
    co_await body_(wc);
    const sim::SimTime elapsed = graph_.scheduler().now() - start;
    obs_element_ns_->Observe(static_cast<uint64_t>(elapsed));
    obs::Tracer().Record(obs::SpanRecord{"seda.element", name_,
                                         graph_.tracking()
                                             ? context::GlobalContextTree().HashOf(wc.curr_node)
                                             : 0,
                                         static_cast<int64_t>(start),
                                         static_cast<int64_t>(elapsed)});
  }
}

}  // namespace whodunit::seda
