#include "src/util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace whodunit::util {

ThreadPool::ThreadPool(size_t threads) {
  const size_t n = std::min(threads, kMaxThreads);
  if (n <= 1) {
    return;  // inline pool
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::Submit(std::function<void()> job) {
  if (workers_.empty()) {
    job();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) {
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

}  // namespace whodunit::util
