// Vector-backed FIFO ring: the steady-state-allocation-free deque.
//
// libstdc++'s std::deque allocates and frees a 512-byte chunk every
// time a push/pop cycle crosses a chunk boundary, so even a deque
// whose size oscillates around a constant keeps calling malloc
// forever. The simulator's hottest FIFOs — channel buffers, blocked-
// receiver lists, the live daemon's recent-event ring and history
// store — all have that shape. A RingQueue keeps one contiguous
// power-of-two block and wraps head/tail indices around it: capacity
// grows amortized like a vector, and once the high-water mark is
// reached the queue never allocates again.
#ifndef SRC_UTIL_RING_QUEUE_H_
#define SRC_UTIL_RING_QUEUE_H_

#include <cstddef>
#include <new>
#include <utility>

namespace whodunit::util {

template <typename T>
class RingQueue {
 public:
  RingQueue() = default;
  RingQueue(const RingQueue&) = delete;
  RingQueue& operator=(const RingQueue&) = delete;

  RingQueue(RingQueue&& other) noexcept
      : slots_(other.slots_), cap_(other.cap_), head_(other.head_), size_(other.size_) {
    other.slots_ = nullptr;
    other.cap_ = 0;
    other.head_ = 0;
    other.size_ = 0;
  }

  RingQueue& operator=(RingQueue&& other) noexcept {
    if (this != &other) {
      Destroy();
      slots_ = other.slots_;
      cap_ = other.cap_;
      head_ = other.head_;
      size_ = other.size_;
      other.slots_ = nullptr;
      other.cap_ = 0;
      other.head_ = 0;
      other.size_ = 0;
    }
    return *this;
  }

  ~RingQueue() { Destroy(); }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  size_t capacity() const { return cap_; }

  T& front() { return slots_[head_]; }
  const T& front() const { return slots_[head_]; }
  T& back() { return slots_[Wrap(head_ + size_ - 1)]; }
  const T& back() const { return slots_[Wrap(head_ + size_ - 1)]; }

  // Logical index: [0] is the front (oldest) element.
  T& operator[](size_t i) { return slots_[Wrap(head_ + i)]; }
  const T& operator[](size_t i) const { return slots_[Wrap(head_ + i)]; }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) {
      Grow();
    }
    T* slot = slots_ + Wrap(head_ + size_);
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_front() {
    slots_[head_].~T();
    head_ = Wrap(head_ + 1);
    --size_;
  }

  // Moves the front (oldest) element to the back, keeping the element
  // alive so the caller can overwrite it by assignment and reuse
  // whatever storage it already owns — the recycling idiom for a ring
  // of pool-backed records. A full ring rotates by index alone;
  // otherwise the element is move-relocated into the next free slot.
  void rotate_front_to_back() {
    if (size_ <= 1) {
      return;
    }
    if (size_ == cap_) {
      head_ = Wrap(head_ + 1);
      return;
    }
    T* slot = slots_ + Wrap(head_ + size_);
    ::new (static_cast<void*>(slot)) T(std::move(slots_[head_]));
    slots_[head_].~T();
    head_ = Wrap(head_ + 1);
  }

  void clear() {
    while (size_ > 0) {
      pop_front();
    }
    head_ = 0;
  }

 private:
  static constexpr size_t kMinCapacity = 8;

  size_t Wrap(size_t i) const { return i & (cap_ - 1); }

  void Grow() {
    const size_t next = cap_ == 0 ? kMinCapacity : cap_ * 2;
    T* block = static_cast<T*>(
        ::operator new(next * sizeof(T), std::align_val_t(alignof(T))));
    for (size_t i = 0; i < size_; ++i) {
      T& old = slots_[Wrap(head_ + i)];
      ::new (static_cast<void*>(block + i)) T(std::move(old));
      old.~T();
    }
    if (slots_ != nullptr) {
      ::operator delete(slots_, std::align_val_t(alignof(T)));
    }
    slots_ = block;
    cap_ = next;
    head_ = 0;
  }

  void Destroy() {
    clear();
    if (slots_ != nullptr) {
      ::operator delete(slots_, std::align_val_t(alignof(T)));
      slots_ = nullptr;
      cap_ = 0;
    }
  }

  T* slots_ = nullptr;
  size_t cap_ = 0;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace whodunit::util

#endif  // SRC_UTIL_RING_QUEUE_H_
