#include "src/util/arena.h"

#include <new>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace whodunit::util {

ArenaPool& ArenaPool::ThisThread() {
  thread_local ArenaPool pool;
  return pool;
}

size_t ArenaPool::ClassIndex(size_t bytes) {
  if (bytes <= kStepClasses * 64) {
    return (bytes + 63) / 64 - (bytes == 0 ? 0 : 1);
  }
  size_t cls = kStepClasses;
  size_t cap = 2048;
  while (cap < bytes && cls < kClassCount) {
    cap <<= 1;
    ++cls;
  }
  return cls;  // kClassCount when bytes > kMaxPooledBytes
}

size_t ArenaPool::ClassBytes(size_t cls) {
  if (cls < kStepClasses) return (cls + 1) * 64;
  return size_t{2048} << (cls - kStepClasses);
}

void* ArenaPool::Allocate(size_t bytes) {
  ++alloc_calls_;
  const size_t cls = ClassIndex(bytes);
  if (cls >= kClassCount) {
    ++oversize_allocs_;
    return ::operator new(bytes);
  }
  const size_t rounded = ClassBytes(cls);
  outstanding_bytes_ += rounded;
  if (outstanding_bytes_ > peak_outstanding_bytes_) {
    peak_outstanding_bytes_ = outstanding_bytes_;
  }
  if (FreeBlock* head = free_[cls]) {
    free_[cls] = head->next;
    cached_bytes_ -= rounded;
    ++reuse_hits_;
    return head;
  }
  ++fresh_blocks_;
  return ::operator new(rounded);
}

void ArenaPool::Deallocate(void* p, size_t bytes) {
  if (p == nullptr) return;
  const size_t cls = ClassIndex(bytes);
  if (cls >= kClassCount) {
    ::operator delete(p);
    return;
  }
  const size_t rounded = ClassBytes(cls);
  outstanding_bytes_ -= rounded;
  auto* block = static_cast<FreeBlock*>(p);
  block->next = free_[cls];
  free_[cls] = block;
  cached_bytes_ += rounded;
}

void ArenaPool::Trim() {
  for (size_t cls = 0; cls < kClassCount; ++cls) {
    FreeBlock* head = free_[cls];
    free_[cls] = nullptr;
    while (head != nullptr) {
      FreeBlock* next = head->next;
      ::operator delete(head);
      head = next;
    }
  }
  cached_bytes_ = 0;
}

uint64_t ApproxHeapBytes() {
#if defined(__GLIBC__)
  struct mallinfo2 info = mallinfo2();
  return static_cast<uint64_t>(info.uordblks) +
         static_cast<uint64_t>(info.hblkhd);
#else
  return 0;
#endif
}

}  // namespace whodunit::util
