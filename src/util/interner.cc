#include "src/util/interner.h"

namespace whodunit::util {

uint32_t StringInterner::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

uint32_t StringInterner::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kNotFound : it->second;
}

const std::string& StringInterner::NameOf(uint32_t id) const { return names_.at(id); }

}  // namespace whodunit::util
