#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace whodunit::util {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSet::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double x : samples_) {
    s += x;
  }
  return s / static_cast<double>(samples_.size());
}

double SampleSet::Quantile(double q) const {
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<size_t>(q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[std::min(idx, samples_.size() - 1)];
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (size_t i = 0; i < kBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LogHistogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (nearest-rank on the bucketed CDF).
  const double target = q * static_cast<double>(count_ - 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const double first = static_cast<double>(seen);
    seen += buckets_[i];
    if (target < static_cast<double>(seen)) {
      // Interpolate between the bucket's bounds by the rank's position
      // inside the bucket.
      const double lo = static_cast<double>(BucketLowerBound(i));
      const double hi = i + 1 < kBuckets ? static_cast<double>(BucketLowerBound(i + 1))
                                         : lo * 2.0;
      const double frac =
          buckets_[i] > 1 ? (target - first) / static_cast<double>(buckets_[i] - 1) : 0.5;
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
  }
  return static_cast<double>(BucketLowerBound(kBuckets - 1));
}

}  // namespace whodunit::util
