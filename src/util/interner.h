// String interning: stable small integer ids for names.
//
// The profiler manipulates function names, handler names and stage
// names constantly; interning makes call paths and transaction contexts
// cheap vectors of 32-bit ids instead of string lists.
#ifndef SRC_UTIL_INTERNER_H_
#define SRC_UTIL_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace whodunit::util {

// Bidirectional string <-> id map. Ids are dense, starting at 0.
class StringInterner {
 public:
  // Returns the id for name, creating one if new.
  uint32_t Intern(std::string_view name);

  // Returns the id if present, or kNotFound.
  uint32_t Find(std::string_view name) const;

  // Name for an interned id; id must be < size().
  const std::string& NameOf(uint32_t id) const;

  size_t size() const { return names_.size(); }

  static constexpr uint32_t kNotFound = 0xffffffffu;

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace whodunit::util

#endif  // SRC_UTIL_INTERNER_H_
