#include "src/util/shard_state.h"

#include <mutex>

namespace whodunit::util {
namespace {

// Registrations happen during static initialization, save/reset/
// restore from shard worker threads afterwards; the mutex makes the
// handoff safe without ordering assumptions.
std::mutex& CountersMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<ShardCounter>& Counters() {
  static std::vector<ShardCounter>* counters = new std::vector<ShardCounter>();
  return *counters;
}

}  // namespace

void RegisterShardCounter(const ShardCounter& counter) {
  std::lock_guard<std::mutex> lock(CountersMutex());
  Counters().push_back(counter);
}

std::vector<uint64_t> SaveShardCounters() {
  std::lock_guard<std::mutex> lock(CountersMutex());
  std::vector<uint64_t> saved;
  saved.reserve(Counters().size());
  for (const ShardCounter& c : Counters()) {
    saved.push_back(c.get());
  }
  return saved;
}

void ResetShardCounters() {
  std::lock_guard<std::mutex> lock(CountersMutex());
  for (const ShardCounter& c : Counters()) {
    c.set(c.fresh);
  }
}

void RestoreShardCounters(const std::vector<uint64_t>& saved) {
  std::lock_guard<std::mutex> lock(CountersMutex());
  for (size_t i = 0; i < Counters().size() && i < saved.size(); ++i) {
    Counters()[i].set(saved[i]);
  }
}

}  // namespace whodunit::util
