// A fixed-size worker pool for shard-parallel simulation.
//
// Deliberately minimal: submit void() jobs, wait for all of them. The
// parallel runner (src/sim/parallel_runner.h) owns result ordering and
// determinism; the pool only provides bounded physical parallelism.
// `threads == 0` or `threads == 1` degenerates to running jobs inline
// on the submitting thread — no worker threads are spawned, so a
// serial run is exactly the code path a non-parallel build would take.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace whodunit::util {

class ThreadPool {
 public:
  // Spawns `threads` workers (capped at kMaxThreads); 0 and 1 both
  // mean inline execution.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  static constexpr size_t kMaxThreads = 64;

  // Enqueues a job (runs it immediately when the pool is inline).
  void Submit(std::function<void()> job);

  // Blocks until every submitted job has finished. The inline pool
  // returns immediately.
  void Wait();

  size_t thread_count() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty or stopping
  std::condition_variable done_cv_;   // Wait(): queue drained and nothing running
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace whodunit::util

#endif  // SRC_UTIL_THREAD_POOL_H_
