#include "src/util/zipf.h"

#include <algorithm>
#include <cmath>

namespace whodunit::util {

ZipfSampler::ZipfSampler(uint64_t n, double theta) {
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = acc;
  }
  for (auto& v : cdf_) {
    v /= acc;
  }
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace whodunit::util
