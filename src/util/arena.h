// Size-class arena pool: recycled fixed-size blocks for the simulator's
// per-event and per-coroutine allocations.
//
// The DES core allocates and frees small objects at enormous rates —
// one coroutine frame per simulated thread of control, one overflow
// block per large scheduled event. Going to malloc for each would
// dominate the run at million-client scale, so a pool keeps freed
// blocks on intrusive per-size-class freelists and hands them back on
// the next allocation of the same class: steady-state simulation makes
// no malloc calls at all.
//
// One pool per thread (ThisThread()). A shard of a ParallelRunner
// fan-out runs entirely on one pool thread, so the thread-local pool
// is the shard's arena: no locks, no false sharing, TSan-clean by
// construction. Reuse is a pure memory optimization — block contents
// are always reconstructed — so pooling cannot perturb simulation
// results or the shard-merge byte-identity contract.
#ifndef SRC_UTIL_ARENA_H_
#define SRC_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>

namespace whodunit::util {

class ArenaPool {
 public:
  // 64-byte steps up to 1 KiB, then powers of two up to 64 KiB.
  // Larger requests bypass the pool (direct operator new/delete).
  static constexpr size_t kStepClasses = 16;   // 64, 128, ..., 1024
  static constexpr size_t kPow2Classes = 6;    // 2048, ..., 65536
  static constexpr size_t kClassCount = kStepClasses + kPow2Classes;
  static constexpr size_t kMaxPooledBytes = 64 * 1024;

  ArenaPool() = default;
  ~ArenaPool() { Trim(); }
  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  // The calling thread's pool. Coroutine frames and event-overflow
  // blocks route here (src/sim/task.h, src/sim/event.h).
  static ArenaPool& ThisThread();

  void* Allocate(size_t bytes);
  // `bytes` must be the size passed to Allocate (sized delete).
  void Deallocate(void* p, size_t bytes);

  // Releases every cached free block back to the system. Outstanding
  // allocations are unaffected. Used between bench configurations so
  // per-scale memory measurements start from a cold pool.
  void Trim();

  // ---- Accounting (not obs metrics: pool state is per host thread,
  // so counts would vary with BENCH_THREADS; benches read these only
  // from serial contexts) ----------------------------------------------
  uint64_t alloc_calls() const { return alloc_calls_; }
  uint64_t reuse_hits() const { return reuse_hits_; }
  uint64_t fresh_blocks() const { return fresh_blocks_; }
  uint64_t oversize_allocs() const { return oversize_allocs_; }
  // Bytes currently handed out (pooled classes only, class-rounded).
  uint64_t outstanding_bytes() const { return outstanding_bytes_; }
  uint64_t peak_outstanding_bytes() const { return peak_outstanding_bytes_; }
  uint64_t cached_bytes() const { return cached_bytes_; }

 private:
  struct FreeBlock {
    FreeBlock* next;
  };

  // Index of the smallest class holding `bytes`; kClassCount if the
  // request is too large to pool.
  static size_t ClassIndex(size_t bytes);
  static size_t ClassBytes(size_t cls);

  FreeBlock* free_[kClassCount] = {};
  uint64_t alloc_calls_ = 0;
  uint64_t reuse_hits_ = 0;
  uint64_t fresh_blocks_ = 0;
  uint64_t oversize_allocs_ = 0;
  uint64_t outstanding_bytes_ = 0;
  uint64_t peak_outstanding_bytes_ = 0;
  uint64_t cached_bytes_ = 0;
};

// Approximate bytes currently allocated from the heap by this process
// (glibc mallinfo2), or 0 where unavailable. The client-scaling bench
// uses deltas of this to compute bytes-per-client.
uint64_t ApproxHeapBytes();

}  // namespace whodunit::util

#endif  // SRC_UTIL_ARENA_H_
