// Arena-backed small vector: contiguous storage drawn from the
// calling thread's ArenaPool instead of malloc.
//
// The live-observability pipeline (src/obs/live) builds, ships, and
// retires one TxnEvent per published transaction. Backing each event's
// span and attribution blocks with std::vector means two mallocs and
// two frees per transaction on the hottest always-on path in the
// system. A PooledVec draws its block from ArenaPool::ThisThread()
// and returns it there on destruction, so the blocks recycle through
// the pool's size-class freelists: steady-state publication makes no
// malloc calls at all (bench_ablation_live_obs asserts this with an
// operator-new counter).
//
// Semantics match the std::vector subset the pipeline needs: value
// copy/move, push/clear/iterate. Moves steal the block (the channel
// hand-off and the recent-ring push are pointer swaps); copies (the
// history store's retention copy) allocate from the destination
// thread's pool. A block may be freed on a different thread than the
// one that allocated it — pool blocks are plain heap memory, so they
// simply join the freeing thread's freelist.
#ifndef SRC_UTIL_POOLED_VEC_H_
#define SRC_UTIL_POOLED_VEC_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "src/util/arena.h"

namespace whodunit::util {

template <typename T>
class PooledVec {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "PooledVec elements must be nothrow-movable (growth moves)");
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "ArenaPool blocks carry default new alignment");

 public:
  PooledVec() = default;

  PooledVec(const PooledVec& other) { CopyFrom(other); }

  PooledVec& operator=(const PooledVec& other) {
    if (this != &other) {
      DestroyElements();
      size_ = 0;
      CopyFrom(other);
    }
    return *this;
  }

  PooledVec(PooledVec&& other) noexcept
      : data_(other.data_), size_(other.size_), cap_(other.cap_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.cap_ = 0;
  }

  PooledVec& operator=(PooledVec&& other) noexcept {
    if (this != &other) {
      Release();
      data_ = other.data_;
      size_ = other.size_;
      cap_ = other.cap_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.cap_ = 0;
    }
    return *this;
  }

  ~PooledVec() { Release(); }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  size_t capacity() const { return cap_; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void reserve(size_t n) {
    if (n > cap_) {
      Grow(n);
    }
  }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) {
      Grow(size_ + 1);
    }
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    --size_;
    data_[size_].~T();
  }

  // Destroys the elements but keeps the block for reuse.
  void clear() {
    DestroyElements();
    size_ = 0;
  }

 private:
  static constexpr uint32_t kMinCapacity = 4;

  void CopyFrom(const PooledVec& other) {
    reserve(other.size_);
    for (size_t i = 0; i < other.size_; ++i) {
      ::new (static_cast<void*>(data_ + i)) T(other.data_[i]);
    }
    size_ = other.size_;
  }

  void Grow(size_t need) {
    size_t next = cap_ == 0 ? kMinCapacity : static_cast<size_t>(cap_) * 2;
    while (next < need) {
      next *= 2;
    }
    T* block = static_cast<T*>(ArenaPool::ThisThread().Allocate(next * sizeof(T)));
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(block + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (data_ != nullptr) {
      ArenaPool::ThisThread().Deallocate(data_, static_cast<size_t>(cap_) * sizeof(T));
    }
    data_ = block;
    cap_ = static_cast<uint32_t>(next);
  }

  void DestroyElements() {
    for (size_t i = size_; i-- > 0;) {
      data_[i].~T();
    }
  }

  void Release() {
    DestroyElements();
    if (data_ != nullptr) {
      ArenaPool::ThisThread().Deallocate(data_, static_cast<size_t>(cap_) * sizeof(T));
    }
    data_ = nullptr;
    size_ = 0;
    cap_ = 0;
  }

  T* data_ = nullptr;
  uint32_t size_ = 0;
  uint32_t cap_ = 0;
};

}  // namespace whodunit::util

#endif  // SRC_UTIL_POOLED_VEC_H_
