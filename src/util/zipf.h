// Zipf-distributed sampling over a fixed universe of n items.
//
// Web object popularity (the Rice trace) and TPC-W item popularity are
// both well-modelled by Zipf-like distributions; the skew is what makes
// the proxy/servlet caches in the reproduced experiments effective.
#ifndef SRC_UTIL_ZIPF_H_
#define SRC_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace whodunit::util {

// Samples ranks in [0, n) with P(rank k) proportional to 1/(k+1)^theta.
//
// Uses a precomputed CDF and binary search: O(n) setup, O(log n) per
// draw, exact (no rejection), deterministic given the Rng.
class ZipfSampler {
 public:
  // n must be >= 1; theta >= 0 (0 degenerates to uniform).
  ZipfSampler(uint64_t n, double theta);

  // Draws a rank in [0, n); rank 0 is the most popular item.
  uint64_t Sample(Rng& rng) const;

  uint64_t universe_size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace whodunit::util

#endif  // SRC_UTIL_ZIPF_H_
