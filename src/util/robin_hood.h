// Cache-friendly open-addressing hash map (robin-hood probing).
//
// The profiler's hot paths — the flow detector's location dictionary,
// MiniVM guest memory, the translation cache, the context tree's
// hash-consing table — do one lookup per emulated instruction or per
// context operation. std::unordered_map pays a pointer chase per probe
// (node-based buckets); this table keeps key, value, and probe
// metadata in one flat array, so a lookup is a hash, a masked index,
// and a short linear scan over adjacent cache lines.
//
// Robin-hood displacement bounds probe-length variance: an insert that
// has probed farther than the resident entry swaps with it, so lookups
// can stop as soon as they reach a slot whose resident is closer to
// its home than the probe is ("rich" entry). Deletion uses backward
// shifting, which preserves that invariant without tombstones.
//
// Requirements: Key is equality-comparable and cheap to copy; Value is
// default-constructible and movable. Not thread-safe (the simulator is
// single-threaded by design).
#ifndef SRC_UTIL_ROBIN_HOOD_H_
#define SRC_UTIL_ROBIN_HOOD_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace whodunit::util {

// Default hash: SplitMix64 finisher. std::hash of an integer is the
// identity on libstdc++, which is fine for chaining but feeds raw
// low-entropy bits to a power-of-two mask; one multiply-xorshift round
// spreads them.
struct SplitMix64Hash {
  size_t operator()(uint64_t x) const {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

template <typename Key, typename Value, typename Hash = SplitMix64Hash>
class RobinHoodMap {
 public:
  RobinHoodMap() = default;

  Value* Find(const Key& key) {
    return const_cast<Value*>(std::as_const(*this).Find(key));
  }

  const Value* Find(const Key& key) const {
    if (size_ == 0) {
      return nullptr;
    }
    size_t i = Hash{}(key)&mask_;
    for (uint8_t d = 1; slots_[i].dist >= d; ++d, i = (i + 1) & mask_) {
      if (slots_[i].key == key) {
        return &slots_[i].value;
      }
    }
    return nullptr;
  }

  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  // Issues a prefetch for key's home bucket. Probe batches (the
  // section cache's fingerprint sweeps, the flow detector's dictionary
  // input groups) call this for every key up front, then probe: the
  // bucket lines load in parallel instead of serializing one cache
  // miss per probe.
  void Prefetch(const Key& key) const {
    if (size_ != 0) {
      __builtin_prefetch(&slots_[Hash{}(key)&mask_]);
    }
  }

  // Returns the value slot for key, inserting a default-constructed
  // value if absent; *existed reports which. The hit path is a single
  // probe (Find + GetOrInsert would pay two), which matters to callers
  // that overwrite an entry but must know whether one was there — the
  // flow detector's dictionary writes.
  Value& FindOrInsert(const Key& key, bool* existed) {
    if (Value* v = Find(key)) {
      *existed = true;
      return *v;
    }
    *existed = false;
    ReserveForInsert();
    return *InsertFresh(key, Value{});
  }

  // Inserts key with a default-constructed value if absent; returns
  // the (new or existing) value.
  Value& GetOrInsert(const Key& key) {
    if (Value* v = Find(key)) {
      return *v;
    }
    ReserveForInsert();
    return *InsertFresh(key, Value{});
  }

  // Insert-or-assign.
  Value& Upsert(const Key& key, Value value) {
    if (Value* v = Find(key)) {
      *v = std::move(value);
      return *v;
    }
    ReserveForInsert();
    return *InsertFresh(key, std::move(value));
  }

  bool Erase(const Key& key) {
    if (size_ == 0) {
      return false;
    }
    size_t i = Hash{}(key)&mask_;
    uint8_t d = 1;
    for (; slots_[i].dist >= d; ++d, i = (i + 1) & mask_) {
      if (slots_[i].key == key) {
        break;
      }
    }
    if (slots_[i].dist < d) {
      return false;
    }
    // Backward-shift the following displaced run one slot left.
    size_t j = (i + 1) & mask_;
    while (slots_[j].dist > 1) {
      slots_[i] = std::move(slots_[j]);
      --slots_[i].dist;
      i = j;
      j = (j + 1) & mask_;
    }
    slots_[i] = Slot{};
    --size_;
    return true;
  }

  void Clear() {
    slots_.clear();
    slots_.shrink_to_fit();
    mask_ = 0;
    size_ = 0;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.dist != 0) {
        fn(s.key, s.value);
      }
    }
  }

 private:
  // dist is the probe distance + 1 of the resident entry; 0 = empty.
  struct Slot {
    Key key{};
    Value value{};
    uint8_t dist = 0;
  };

  static constexpr size_t kMinCapacity = 16;

  void ReserveForInsert() {
    // Grow at 7/8 load: robin hood keeps probe runs short well past
    // 3/4, and the flat layout makes the extra density worth it.
    if (slots_.empty() || (size_ + 1) * 8 >= slots_.size() * 7) {
      Grow();
    }
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    const size_t cap = old.empty() ? kMinCapacity : old.size() * 2;
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    size_ = 0;
    for (Slot& s : old) {
      if (s.dist != 0) {
        InsertFresh(s.key, std::move(s.value));
      }
    }
  }

  // Inserts a key known to be absent. Returns the address of the
  // inserted value (stable until the next insert/erase).
  Value* InsertFresh(Key key, Value value) {
    const Key original = key;
    size_t i = Hash{}(key)&mask_;
    uint8_t d = 1;
    Value* result = nullptr;
    for (;;) {
      if (slots_[i].dist == 0) {
        slots_[i].key = key;
        slots_[i].value = std::move(value);
        slots_[i].dist = d;
        ++size_;
        return result != nullptr ? result : &slots_[i].value;
      }
      if (slots_[i].dist < d) {
        // The carried entry is poorer than the resident: swap them and
        // keep probing for the evicted one.
        std::swap(key, slots_[i].key);
        std::swap(value, slots_[i].value);
        std::swap(d, slots_[i].dist);
        if (result == nullptr) {
          result = &slots_[i].value;
        }
      }
      i = (i + 1) & mask_;
      ++d;
      if (d == UINT8_MAX) {
        // Probe run outgrew the metadata byte (astronomically unlikely
        // below the load ceiling): rehash larger, finish placing the
        // carried entry, and re-find the one this call promised.
        Grow();
        InsertFresh(key, std::move(value));
        return Find(original);
      }
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace whodunit::util

#endif  // SRC_UTIL_ROBIN_HOOD_H_
