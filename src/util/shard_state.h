// Registry of thread-local id counters that shard isolates restart.
//
// A few subsystems allocate process-unique ids from file-level
// counters (simulated-lock ids, MiniVM program ids). Under the
// shard-parallel runner (src/sim/parallel_runner.h) those counters
// become thread-local, and every shard must see them start from the
// same fresh value — otherwise the ids a shard allocates would depend
// on which pool thread ran it and on what ran there before, breaking
// the byte-identical-merge contract.
//
// Each allocator registers its accessors once (static initialization);
// a shard isolate saves the calling thread's values, resets them to
// their fresh seeds for the shard's lifetime, and restores them on
// exit. The get/set hooks always act on the *calling* thread's
// instance of the counter.
#ifndef SRC_UTIL_SHARD_STATE_H_
#define SRC_UTIL_SHARD_STATE_H_

#include <cstdint>
#include <vector>

namespace whodunit::util {

struct ShardCounter {
  uint64_t (*get)();       // current value on the calling thread
  void (*set)(uint64_t);   // overwrite on the calling thread
  uint64_t fresh;          // the value a new shard starts from
};

// Registers a counter; normally called from a namespace-scope
// ShardCounterRegistrar during static initialization.
void RegisterShardCounter(const ShardCounter& counter);

// Save / reset-to-fresh / restore for every registered counter, in
// registration order, on the calling thread.
std::vector<uint64_t> SaveShardCounters();
void ResetShardCounters();
void RestoreShardCounters(const std::vector<uint64_t>& saved);

struct ShardCounterRegistrar {
  explicit ShardCounterRegistrar(const ShardCounter& counter) {
    RegisterShardCounter(counter);
  }
};

}  // namespace whodunit::util

#endif  // SRC_UTIL_SHARD_STATE_H_
