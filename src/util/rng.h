// Deterministic pseudo-random number generation for the simulator.
//
// All randomness in the reproduction flows through Rng so that every
// experiment is bit-reproducible from a seed. The generator is
// xoshiro256** (Blackman & Vigna), which is fast, has a 2^256-1 period,
// and passes BigCrush; quality matters because the workload generators
// draw millions of variates per run.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

namespace whodunit::util {

// A seeded xoshiro256** generator with convenience distributions.
//
// Not thread-safe; the simulator is single-threaded by design, and each
// independent workload source owns its own Rng (seeded distinctly) so
// that adding a source does not perturb the draws of another.
class Rng {
 public:
  // Seeds the state via splitmix64 so that nearby seeds yield
  // uncorrelated streams.
  explicit Rng(uint64_t seed);

  // Raw 64 uniform bits.
  uint64_t NextU64();

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  // multiply-shift rejection method (unbiased).
  uint64_t NextBelow(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Exponentially distributed double with the given mean (> 0).
  double NextExponential(double mean);

  // True with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // Pareto-distributed double with scale x_m > 0 and shape alpha > 0;
  // used for heavy-tailed web object sizes.
  double NextPareto(double x_m, double alpha);

  // Splits off an independent generator; handy for giving each client
  // of a workload its own stream derived from one master seed.
  Rng Split();

 private:
  uint64_t s_[4];
};

}  // namespace whodunit::util

#endif  // SRC_UTIL_RNG_H_
