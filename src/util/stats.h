// Streaming statistics used by the experiment harnesses.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace whodunit::util {

// Welford-style running mean/variance with min/max tracking.
// Numerically stable for the long accumulation runs the benchmarks do.
class RunningStat {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // sample variance; 0 if count < 2
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  // Merges another accumulator into this one (parallel-merge formula).
  void Merge(const RunningStat& other);

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Retains every sample; offers exact quantiles. Used for response-time
// distributions where the harness reports medians/percentiles.
class SampleSet {
 public:
  void Add(double x);

  uint64_t count() const { return samples_.size(); }
  double mean() const;
  // q in [0, 1]; nearest-rank quantile. Returns 0 when empty.
  double Quantile(double q) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Log-bucketed streaming histogram with a quantile API.
//
// Buckets have a fixed global geometry (values 0..7 exact, then 8
// sub-buckets per power of two), so two histograms are mergeable by
// adding counts bucket-wise — the property the live aggregation
// daemon (src/obs/live) relies on to fold per-stage state without
// retaining samples. Relative quantile error is bounded by the
// sub-bucket width, 12.5%.
class LogHistogram {
 public:
  // 0..7 exact, plus 8 sub-buckets for each leading-bit position 3..63.
  static constexpr size_t kBuckets = 8 + 61 * 8;

  // Bucket index of a value; fixed geometry shared by all instances.
  static constexpr size_t BucketOf(uint64_t v) {
    if (v < 8) {
      return static_cast<size_t>(v);
    }
    const int octave = 63 - std::countl_zero(v);
    const uint64_t sub = (v >> (octave - 3)) & 7;
    return 8 + static_cast<size_t>(octave - 3) * 8 + static_cast<size_t>(sub);
  }

  // Smallest value mapping to bucket `i`.
  static constexpr uint64_t BucketLowerBound(size_t i) {
    if (i < 8) {
      return i;
    }
    const uint64_t octave = 3 + (i - 8) / 8;
    const uint64_t sub = (i - 8) % 8;
    return (8 + sub) << (octave - 3);
  }

  void Add(uint64_t v, uint64_t n = 1) {
    buckets_[BucketOf(v)] += n;
    count_ += n;
    sum_ += static_cast<double>(v) * static_cast<double>(n);
  }

  // Adds the other histogram's counts into this one. Exact: the bucket
  // geometry is global, so merging loses nothing beyond what bucketing
  // already lost.
  void Merge(const LogHistogram& other);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  // q in [0, 1]; returns an estimate of the q-quantile: the value is
  // linearly interpolated inside the bucket holding the target rank.
  // Returns 0 when empty.
  double Quantile(double q) const;

  // Per-bucket counts for export; indices follow BucketLowerBound.
  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace whodunit::util

#endif  // SRC_UTIL_STATS_H_
