// Streaming statistics used by the experiment harnesses.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace whodunit::util {

// Welford-style running mean/variance with min/max tracking.
// Numerically stable for the long accumulation runs the benchmarks do.
class RunningStat {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // sample variance; 0 if count < 2
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  // Merges another accumulator into this one (parallel-merge formula).
  void Merge(const RunningStat& other);

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Retains every sample; offers exact quantiles. Used for response-time
// distributions where the harness reports medians/percentiles.
class SampleSet {
 public:
  void Add(double x);

  uint64_t count() const { return samples_.size(); }
  double mean() const;
  // q in [0, 1]; nearest-rank quantile. Returns 0 when empty.
  double Quantile(double q) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace whodunit::util

#endif  // SRC_UTIL_STATS_H_
