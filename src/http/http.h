// Minimal HTTP-ish message types shared by the simulated applications.
//
// The reproduced servers (minihttpd, miniproxy, the SEDA server, the
// bookstore) exchange these over sim::Channel. Contents are abstract —
// what matters for the experiments is who talks to whom, how many
// bytes move, and what each hop costs.
#ifndef SRC_HTTP_HTTP_H_
#define SRC_HTTP_HTTP_H_

#include <cmath>
#include <cstdint>

#include "src/context/synopsis.h"

namespace whodunit::http {

struct Request {
  uint64_t id = 0;         // unique per in-flight request
  uint32_t object_id = 0;  // which object / which page
  uint32_t client = 0;     // issuing client (for reply routing)
  bool keep_alive = false;
  uint64_t header_bytes = 300;
  // Whodunit piggy-back (empty when profiling is off / not Whodunit).
  context::Synopsis synopsis;
};

struct Response {
  uint64_t id = 0;
  uint32_t object_id = 0;
  uint64_t body_bytes = 0;
  int status = 200;
  context::Synopsis synopsis;
};

// Deterministic synthetic content store: object sizes follow a
// bounded Pareto-like distribution derived from the object id, so any
// stage can compute an object's size without shared state.
class ObjectStore {
 public:
  ObjectStore(uint64_t objects, uint64_t min_bytes, uint64_t max_bytes)
      : objects_(objects), min_bytes_(min_bytes), max_bytes_(max_bytes) {}

  uint64_t objects() const { return objects_; }

  uint64_t SizeOf(uint32_t object_id) const {
    // splitmix64 of the id -> heavy-tailed size in [min, max].
    uint64_t x = object_id + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    // Map to a Pareto-ish tail: most objects small, a few large.
    const double u = static_cast<double>(x >> 11) * 0x1.0p-53;
    const double alpha = 1.2;
    double size = static_cast<double>(min_bytes_) / std::pow(1.0 - u, 1.0 / alpha);
    if (size > static_cast<double>(max_bytes_)) {
      size = static_cast<double>(max_bytes_);
    }
    return static_cast<uint64_t>(size);
  }

 private:
  uint64_t objects_;
  uint64_t min_bytes_;
  uint64_t max_bytes_;
};

}  // namespace whodunit::http

#endif  // SRC_HTTP_HTTP_H_
